//! The channel-dependency graph and its cycle detector.
//!
//! Dally & Seitz: a deterministic routing function is deadlock-free iff
//! the *channel-dependency graph* — vertices are `(link, vc)` channels,
//! with an edge A → B whenever some packet can hold A while requesting
//! B — is acyclic. The graph is built by replaying every enumerated route
//! hop by hop; cycles are found with an iterative Tarjan SCC pass (the
//! graph can have tens of thousands of vertices, so the recursive
//! formulation would risk stack overflow) and reported as concrete
//! witnesses: the channels on the cycle plus one inducing route per edge.

use crate::report::{Channel, RouteId};
use crate::TraceStep;
use ruche_noc::prelude::*;
// lint:allow(hash-order): maps intern channel ids and answer membership /
// witness lookups; every reported cycle or SCC is reconstructed in graph
// order or explicitly normalized (min start node) before display.
use std::collections::{HashMap, HashSet, VecDeque};

/// Channel-dependency graph under construction.
#[derive(Debug, Default)]
pub(crate) struct Cdg {
    ids: HashMap<Channel, u32>,
    channels: Vec<Channel>,
    /// Adjacency: `deps[a]` = channels requested while holding `a`.
    deps: Vec<Vec<u32>>,
    /// One inducing route per dependency edge.
    witness: HashMap<(u32, u32), RouteId>,
    edges: usize,
}

impl Cdg {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, ch: Channel) -> u32 {
        if let Some(&id) = self.ids.get(&ch) {
            return id;
        }
        let id = self.channels.len() as u32;
        self.ids.insert(ch, id);
        self.channels.push(ch);
        self.deps.push(Vec::new());
        id
    }

    /// Replays one traced route into the graph. Steps whose output has no
    /// link behind it (ejection at P, exits into edge endpoints) do not
    /// form channels: a packet never holds them while waiting.
    pub(crate) fn add_trace(&mut self, cfg: &NetworkConfig, route: RouteId, steps: &[TraceStep]) {
        let mut prev: Option<u32> = None;
        for step in steps {
            if cfg.neighbor(step.here, step.out).is_none() {
                prev = None;
                continue;
            }
            let id = self.intern(Channel {
                from: step.here,
                out: step.out,
                vc: step.out_vc,
            });
            if let Some(held) = prev {
                if let std::collections::hash_map::Entry::Vacant(e) = self.witness.entry((held, id))
                {
                    e.insert(route);
                    self.deps[held as usize].push(id);
                    self.edges += 1;
                }
            }
            prev = Some(id);
        }
    }

    pub(crate) fn channel_count(&self) -> usize {
        self.channels.len()
    }

    pub(crate) fn edge_count(&self) -> usize {
        self.edges
    }

    /// Strongly connected components, via iterative Tarjan.
    fn sccs(&self) -> Vec<Vec<u32>> {
        const UNVISITED: u32 = u32::MAX;
        let n = self.channels.len();
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut components = Vec::new();
        // Explicit DFS frames: (vertex, next child position).
        let mut call: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            call.push((root, 0));
            while let Some(&(v, child)) = call.last() {
                let vu = v as usize;
                if child == 0 {
                    index[vu] = next_index;
                    low[vu] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[vu] = true;
                }
                if child < self.deps[vu].len() {
                    call.last_mut().expect("frame").1 += 1;
                    let w = self.deps[vu][child];
                    let wu = w as usize;
                    if index[wu] == UNVISITED {
                        call.push((w, 0));
                    } else if on_stack[wu] {
                        low[vu] = low[vu].min(index[wu]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        let pu = parent as usize;
                        low[pu] = low[pu].min(low[vu]);
                    }
                    if low[vu] == index[vu] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("scc stack");
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(comp);
                    }
                }
            }
        }
        components
    }

    /// Size of the largest SCC (1 on an acyclic graph with vertices).
    pub(crate) fn largest_scc(&self) -> usize {
        self.sccs().iter().map(Vec::len).max().unwrap_or(0)
    }

    /// One witness cycle per non-trivial SCC (and per self-loop).
    pub(crate) fn cycles(&self) -> Vec<(Vec<Channel>, Vec<RouteId>)> {
        let mut found = Vec::new();
        for scc in self.sccs() {
            let cyclic = scc.len() > 1 || self.deps[scc[0] as usize].contains(&scc[0]);
            if cyclic {
                found.push(self.extract_cycle(&scc));
            }
        }
        found
    }

    /// Shortest cycle through the smallest-id vertex of `scc`, found by
    /// BFS restricted to the component.
    fn extract_cycle(&self, scc: &[u32]) -> (Vec<Channel>, Vec<RouteId>) {
        let members: HashSet<u32> = scc.iter().copied().collect();
        let start = *scc.iter().min().expect("non-empty scc");
        let mut pred: HashMap<u32, u32> = HashMap::new();
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &w in &self.deps[v as usize] {
                if !members.contains(&w) {
                    continue;
                }
                if w == start {
                    // Close the cycle: start ⇝ v, then the edge v → start.
                    let mut nodes = vec![v];
                    let mut cur = v;
                    while cur != start {
                        cur = pred[&cur];
                        nodes.push(cur);
                    }
                    nodes.reverse();
                    let channels: Vec<Channel> =
                        nodes.iter().map(|&u| self.channels[u as usize]).collect();
                    let routes: Vec<RouteId> = (0..nodes.len())
                        .map(|i| {
                            let a = nodes[i];
                            let b = nodes[(i + 1) % nodes.len()];
                            self.witness[&(a, b)]
                        })
                        .collect();
                    return (channels, routes);
                }
                if w != start && !pred.contains_key(&w) {
                    pred.insert(w, v);
                    queue.push_back(w);
                }
            }
        }
        unreachable!("SCC flagged cyclic but no cycle through its root")
    }
}
