//! Technology constants for the 12 nm-class analytical models.
//!
//! These constants substitute for the paper's Synopsys Design Compiler /
//! IC Compiler 2 / PrimeTime flow with a 12 nm regular-Vt standard-cell
//! library. They were calibrated once against the paper's published
//! numbers (Table 2 router-area breakdown at ~98 FO4, Table 3 per-packet
//! energies) and are *not* refit per experiment; every area/energy result
//! in this repository flows from this one table. See DESIGN.md §1 for the
//! substitution rationale.

use serde::{Deserialize, Serialize};

/// Calibrated technology and microarchitectural unit costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tech {
    /// Crossbar area per bit per mux-tree input beyond the first, µm²
    /// (a k-input, W-bit one-hot mux costs `(k-1)·W` of these).
    pub xbar_um2_per_bit_conn: f64,
    /// Input-FIFO storage area per bit-slot, µm² (two-element FIFOs).
    pub fifo_um2_per_bit: f64,
    /// Extra VC read-mux area per bit for each VC beyond the first on an
    /// input port, µm².
    pub vc_mux_um2_per_bit: f64,
    /// Route-compute (decode) area per route-compute unit for simple DOR /
    /// Ruche decode, µm².
    pub decode_simple_um2: f64,
    /// Route-compute area per unit for torus VC decode (ring arithmetic +
    /// dateline logic), µm².
    pub decode_vc_um2: f64,
    /// Round-robin arbiter area per crossbar connection, µm².
    pub arb_um2_per_conn: f64,
    /// Wavefront allocator area per cell (an `n×n` allocator has `n²`), µm².
    pub wavefront_um2_per_cell: f64,
    /// Clock + setup overhead on every path, FO4.
    pub clk_overhead_fo4: f64,
    /// Simple route-compute delay, FO4.
    pub decode_delay_fo4: f64,
    /// Torus VC route-compute delay, FO4.
    pub decode_vc_delay_fo4: f64,
    /// Arbiter delay per log2(requests), FO4.
    pub arb_delay_per_level_fo4: f64,
    /// Crossbar mux-tree delay per log2(inputs), FO4.
    pub mux_delay_per_level_fo4: f64,
    /// Wavefront allocator delay per cell on the critical diagonal, FO4.
    pub wavefront_delay_per_cell_fo4: f64,
    /// VC selection mux delay (VC routers), FO4.
    pub vc_sel_delay_fo4: f64,
    /// Intra-tile wire delay, FO4.
    pub wire_delay_fo4: f64,
    /// Baseline per-packet router energy (clocking, FIFO write+read), pJ.
    pub energy_base_pj: f64,
    /// Per-packet energy per mux input beyond the first on the traversed
    /// output, pJ.
    pub energy_per_mux_input_pj: f64,
    /// Per-packet energy per crossbar connection in the router (parasitic
    /// loading of the whole switch), pJ.
    pub energy_per_conn_pj: f64,
    /// Per-packet VC-router overhead (VC muxes, allocator, credit logic), pJ.
    pub energy_vc_overhead_pj: f64,
    /// Process-independent wire capacitance, pF/mm (Ho/Mai/Horowitz).
    pub wire_cap_pf_per_mm: f64,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Payload activity factor (the paper's 0.25: half the bits switch
    /// every cycle).
    pub activity: f64,
    /// Repeater diffusion/gate capacitance overhead on long wires
    /// (multiplier on the wire capacitance).
    pub repeater_overhead: f64,
    /// Tile pitch, mm (the paper's 187 µm tile).
    pub tile_pitch_mm: f64,
    /// Tile area, µm² (187 µm × 187 µm).
    pub tile_area_um2: f64,
    /// Long-range wiring + repeater area per bit-wire per tile crossed, µm²
    /// (the tile-area overhead of Ruche/torus channels passing over).
    pub repeater_um2_per_bit_tile: f64,
    /// Fixed per-tile overhead of having a long-range channel axis at all
    /// (repeater rows, swizzle regions, keep-outs), µm².
    pub longrange_fixed_um2_per_axis: f64,
}

impl Tech {
    /// The calibrated 12 nm-class defaults.
    pub fn n12() -> Self {
        Tech {
            xbar_um2_per_bit_conn: 0.243,
            fifo_um2_per_bit: 0.977,
            vc_mux_um2_per_bit: 0.36,
            decode_simple_um2: 11.0,
            decode_vc_um2: 38.8,
            arb_um2_per_conn: 1.57,
            wavefront_um2_per_cell: 7.76,
            clk_overhead_fo4: 3.0,
            decode_delay_fo4: 4.0,
            decode_vc_delay_fo4: 6.0,
            arb_delay_per_level_fo4: 2.0,
            mux_delay_per_level_fo4: 1.4,
            wavefront_delay_per_cell_fo4: 1.5,
            vc_sel_delay_fo4: 2.0,
            wire_delay_fo4: 2.0,
            energy_base_pj: 1.10,
            energy_per_mux_input_pj: 0.10,
            energy_per_conn_pj: 0.0109,
            energy_vc_overhead_pj: 1.39,
            wire_cap_pf_per_mm: 0.2,
            vdd: 0.8,
            activity: 0.25,
            repeater_overhead: 1.15,
            tile_pitch_mm: 0.187,
            tile_area_um2: 187.0 * 187.0,
            repeater_um2_per_bit_tile: 0.68,
            longrange_fixed_um2_per_axis: 1030.0,
        }
    }
}

impl Default for Tech {
    fn default() -> Self {
        Tech::n12()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_n12() {
        assert_eq!(Tech::default(), Tech::n12());
    }

    #[test]
    fn sanity_of_constants() {
        let t = Tech::n12();
        assert!(t.fifo_um2_per_bit > t.xbar_um2_per_bit_conn);
        assert!(t.decode_vc_um2 > t.decode_simple_um2);
        assert!(t.activity > 0.0 && t.activity <= 1.0);
        assert!(t.tile_area_um2 > 30_000.0);
    }
}
