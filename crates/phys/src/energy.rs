//! Per-packet energy models (Table 3) and the first-order repeatered-wire
//! model for long-range links (§4.9).

use crate::area::RouterParams;
use crate::tech::Tech;
use ruche_noc::crossbar::Connectivity;
use ruche_noc::geometry::Dir;
use ruche_noc::topology::{link_span_tiles, NetworkConfig};
use serde::{Deserialize, Serialize};

/// Per-packet router + link energy model for one network configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyModel {
    tech: Tech,
    params: RouterParams,
    mux_inputs: Vec<(Dir, usize)>,
    spans: Vec<(Dir, f64)>,
}

impl EnergyModel {
    /// Builds the model for `cfg` with the given technology.
    pub fn new(cfg: &NetworkConfig, tech: Tech) -> Self {
        let conn = Connectivity::of(cfg);
        let params = RouterParams::of(cfg);
        let mux_inputs = cfg
            .ports()
            .iter()
            .map(|&d| (d, conn.mux_inputs(d)))
            .collect();
        let spans = cfg
            .ports()
            .iter()
            .map(|&d| (d, link_span_tiles(cfg, d)))
            .collect();
        EnergyModel {
            tech,
            params,
            mux_inputs,
            spans,
        }
    }

    /// Energy to move one packet through the router and out of `out`,
    /// in pJ — the paper's Table 3 quantity (excludes the long-range wire
    /// beyond the tile, see [`EnergyModel::link_energy_pj`]).
    pub fn router_energy_pj(&self, out: Dir) -> f64 {
        let t = &self.tech;
        let k = self
            .mux_inputs
            .iter()
            .find(|&&(d, _)| d == out)
            .map(|&(_, k)| k)
            .unwrap_or(0);
        let width_scale = self.params.channel_bits as f64 / 128.0;
        let vc = if self.params.is_vc {
            t.energy_vc_overhead_pj
        } else {
            0.0
        };
        t.energy_base_pj * width_scale
            + t.energy_per_mux_input_pj * k.saturating_sub(1) as f64 * width_scale
            + t.energy_per_conn_pj * self.params.conns as f64 * width_scale
            + vc * width_scale
    }

    /// Energy of the long-range wire segment of a hop through `out`, pJ:
    /// zero for local links, and the repeatered-wire energy over the
    /// link's span *beyond the sending tile* for Ruche and folded-torus
    /// links — the first tile-crossing is already inside
    /// [`EnergyModel::router_energy_pj`] (Table 3 measures the placed and
    /// routed tile), so charging the full span would double-count it.
    pub fn link_energy_pj(&self, out: Dir) -> f64 {
        let span = self
            .spans
            .iter()
            .find(|&&(d, _)| d == out)
            .map(|&(_, s)| s)
            .unwrap_or(0.0);
        if span <= 1.0 {
            return 0.0;
        }
        let t = &self.tech;
        let mm = (span - 1.0) * t.tile_pitch_mm;
        let cap_pf = t.wire_cap_pf_per_mm * mm * t.repeater_overhead;
        // E = activity × C × V² per bit, times the channel width.
        t.activity * cap_pf * t.vdd * t.vdd * self.params.channel_bits as f64
    }

    /// Total energy of one hop through `out` (router + long wire), pJ.
    pub fn hop_energy_pj(&self, out: Dir) -> f64 {
        self.router_energy_pj(out) + self.link_energy_pj(out)
    }

    /// The technology constants in use.
    pub fn tech(&self) -> &Tech {
        &self.tech
    }
}

/// Energy to deliver a packet along a full route, split into router and
/// wire components, pJ.
pub fn route_energy_pj(
    cfg: &NetworkConfig,
    model: &EnergyModel,
    src: ruche_noc::geometry::Coord,
    dst: ruche_noc::geometry::Coord,
) -> (f64, f64) {
    let path = ruche_noc::routing::walk_route(cfg, src, ruche_noc::routing::Dest::tile(dst));
    let mut router = 0.0;
    let mut wire = 0.0;
    for (_, out) in path {
        router += model.router_energy_pj(out);
        wire += model.link_energy_pj(out);
    }
    (router, wire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruche_noc::geometry::{Coord, Dims};
    use ruche_noc::topology::CrossbarScheme::{Depopulated, FullyPopulated};

    fn within(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() / expected <= tol
    }

    fn model(cfg: &NetworkConfig) -> EnergyModel {
        EnergyModel::new(cfg, Tech::n12())
    }

    fn dims() -> Dims {
        Dims::new(8, 8)
    }

    #[test]
    fn table3_depop_energies() {
        let m = model(&NetworkConfig::full_ruche(dims(), 3, Depopulated));
        assert!(within(m.router_energy_pj(Dir::E), 1.66, 0.10));
        assert!(within(m.router_energy_pj(Dir::S), 1.82, 0.10));
        assert!(within(m.router_energy_pj(Dir::RE), 1.40, 0.12));
        assert!(within(m.router_energy_pj(Dir::RS), 1.49, 0.12));
    }

    #[test]
    fn table3_pop_energies() {
        let m = model(&NetworkConfig::full_ruche(dims(), 3, FullyPopulated));
        assert!(within(m.router_energy_pj(Dir::E), 1.95, 0.12));
        assert!(within(m.router_energy_pj(Dir::S), 2.01, 0.15));
        assert!(within(m.router_energy_pj(Dir::RE), 1.81, 0.12));
        assert!(within(m.router_energy_pj(Dir::RS), 2.00, 0.15));
    }

    #[test]
    fn table3_torus_energies() {
        let m = model(&NetworkConfig::torus(dims()));
        assert!(within(m.router_energy_pj(Dir::E), 2.41, 0.20));
        assert!(within(m.router_energy_pj(Dir::S), 3.35, 0.20));
    }

    #[test]
    fn paper_energy_orderings() {
        // Depop cheaper than pop; both cheaper than torus; Ruche
        // directions cheaper than local directions on depop (§4.3).
        let depop = model(&NetworkConfig::full_ruche(dims(), 3, Depopulated));
        let pop = model(&NetworkConfig::full_ruche(dims(), 3, FullyPopulated));
        let torus = model(&NetworkConfig::torus(dims()));
        for d in [Dir::E, Dir::S] {
            assert!(depop.router_energy_pj(d) < pop.router_energy_pj(d));
            assert!(pop.router_energy_pj(d) < torus.router_energy_pj(d));
        }
        assert!(depop.router_energy_pj(Dir::RE) < depop.router_energy_pj(Dir::E));
        assert!(depop.router_energy_pj(Dir::RS) < depop.router_energy_pj(Dir::S));
    }

    #[test]
    fn long_wire_energy_scales_with_span() {
        let r3 = model(&NetworkConfig::full_ruche(dims(), 3, Depopulated));
        let r2 = model(&NetworkConfig::full_ruche(dims(), 2, Depopulated));
        assert_eq!(r3.link_energy_pj(Dir::E), 0.0, "local links are internal");
        // The first tile-crossing lives in the router energy, so the wire
        // charges span − 1 tiles: RF 3 pays twice the wire of RF 2.
        let w3 = r3.link_energy_pj(Dir::RE);
        let w2 = r2.link_energy_pj(Dir::RE);
        assert!(within(w3 / w2, 2.0, 1e-9), "span 3 vs 2: {w3} / {w2}");
        // Folded torus links span two tiles.
        let torus = model(&NetworkConfig::torus(dims()));
        assert!(torus.link_energy_pj(Dir::E) > 0.0);
    }

    #[test]
    fn ruche_links_are_more_efficient_per_tile_travelled() {
        // §4.9/§6: sending a packet over a Ruche channel costs less than
        // hopping through routers tile by tile.
        let m = model(&NetworkConfig::full_ruche(dims(), 3, Depopulated));
        let ruche_hop = m.hop_energy_pj(Dir::RE); // 3 tiles in one hop
        let three_local = 3.0 * m.hop_energy_pj(Dir::E);
        assert!(
            ruche_hop < three_local,
            "ruche {ruche_hop} vs 3 locals {three_local}"
        );
    }

    #[test]
    fn route_energy_favors_ruche_for_long_distances() {
        let mesh_cfg = NetworkConfig::mesh(Dims::new(16, 16));
        let ruche_cfg = NetworkConfig::full_ruche(Dims::new(16, 16), 3, Depopulated);
        let mesh = model(&mesh_cfg);
        let ruche = model(&ruche_cfg);
        let (mr, mw) = route_energy_pj(&mesh_cfg, &mesh, Coord::new(0, 0), Coord::new(15, 15));
        let (rr, rw) = route_energy_pj(&ruche_cfg, &ruche, Coord::new(0, 0), Coord::new(15, 15));
        assert!(rr + rw < mr + mw, "ruche {} vs mesh {}", rr + rw, mr + mw);
        assert_eq!(mw, 0.0);
        assert!(rw > 0.0);
    }

    #[test]
    fn energy_scales_with_channel_width() {
        let mut cfg = NetworkConfig::mesh(dims());
        let e128 = model(&cfg).router_energy_pj(Dir::E);
        cfg.channel_width_bits = 64;
        let e64 = model(&cfg).router_energy_pj(Dir::E);
        assert!(within(e64 * 2.0, e128, 1e-9));
    }
}
