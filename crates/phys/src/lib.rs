//! # ruche-phys
//!
//! Analytical physical-design models substituting for the paper's Synopsys
//! synthesis / place-and-route / power flow (see DESIGN.md §1):
//!
//! * [`area`] — router cell-area breakdown (Table 2),
//! * [`timing`] — critical-path cycle time in FO4 and the
//!   area-vs-cycle-time sweep (Figure 7),
//! * [`energy`] — per-packet router energy (Table 3) and the first-order
//!   repeatered-wire model for long-range links (§4.9),
//! * [`tile`] — tile-area overhead of long-range channels (Table 6).
//!
//! All constants live in [`tech::Tech`] and were calibrated once against
//! the paper's published 12 nm numbers.
//!
//! ```
//! use ruche_noc::prelude::*;
//! use ruche_phys::{area::RouterParams, area::router_area, tech::Tech};
//!
//! let cfg = NetworkConfig::full_ruche(Dims::new(8, 8), 3, CrossbarScheme::Depopulated);
//! let breakdown = router_area(&RouterParams::of(&cfg), &Tech::n12());
//! assert!(breakdown.total() < 3_200.0); // ~2991 µm² in the paper's Table 2
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod energy;
pub mod tech;
pub mod tile;
pub mod timing;

pub use area::{router_area, AreaBreakdown, RouterParams};
pub use energy::{route_energy_pj, EnergyModel};
pub use tech::Tech;
pub use tile::tile_area_increase;
pub use timing::{area_at, area_sweep, min_cycle_time_fo4, SweepPoint};
