//! Tile-area overhead model (Table 6's "Tile Area Increase" row).
//!
//! Relative to a 2-D mesh tile, a long-range network adds (1) the router
//! delta, (2) wiring-track and repeater area for the channels passing over
//! the tile (`RF` channels per direction per long-range axis), and (3) a
//! fixed per-axis overhead for repeater rows and swizzle regions.

use crate::area::{router_area, RouterParams};
use crate::tech::Tech;
use ruche_noc::geometry::Axis;
use ruche_noc::topology::{NetworkConfig, TopologyKind};

/// Tile area of a configuration relative to the same tile with a 2-D mesh
/// router (mesh = 1.0).
pub fn tile_area_increase(cfg: &NetworkConfig, tech: &Tech) -> f64 {
    let mesh = NetworkConfig::mesh(cfg.dims);
    let base = router_area(&RouterParams::of(&mesh), tech).total();
    let this = router_area(&RouterParams::of(cfg), tech).total();
    let mut overhead = this - base;

    let w = cfg.channel_width_bits as f64;
    let mut axes = 0u32;
    for axis in [Axis::X, Axis::Y] {
        let per_dir = match cfg.topology {
            TopologyKind::Ruche { rf, .. } if cfg.ruche_axis(axis) => rf as f64,
            TopologyKind::Torus { .. } if cfg.torus_axis(axis) => 1.0,
            _ => continue,
        };
        axes += 1;
        // `per_dir` channels per direction pass over each tile.
        overhead += 2.0 * per_dir * w * tech.repeater_um2_per_bit_tile;
    }
    overhead += axes as f64 * tech.longrange_fixed_um2_per_axis;
    1.0 + overhead / tech.tile_area_um2
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruche_noc::geometry::Dims;
    use ruche_noc::topology::CrossbarScheme::{Depopulated, FullyPopulated};

    fn increase(cfg: &NetworkConfig) -> f64 {
        tile_area_increase(cfg, &Tech::n12())
    }

    fn dims() -> Dims {
        Dims::new(32, 16)
    }

    #[test]
    fn mesh_is_unity() {
        assert_eq!(increase(&NetworkConfig::mesh(dims())), 1.0);
    }

    #[test]
    fn table6_tile_area_band() {
        // Table 6: ruche2-depop 1.058, ruche2-pop 1.085, ruche3-depop
        // 1.063, ruche3-pop 1.090, half-torus 1.071. The model lands each
        // within ±0.025 absolute.
        let cases = [
            (NetworkConfig::half_ruche(dims(), 2, Depopulated), 1.058),
            (NetworkConfig::half_ruche(dims(), 2, FullyPopulated), 1.085),
            (NetworkConfig::half_ruche(dims(), 3, Depopulated), 1.063),
            (NetworkConfig::half_ruche(dims(), 3, FullyPopulated), 1.090),
            (NetworkConfig::half_torus(dims()), 1.071),
        ];
        for (cfg, expect) in cases {
            let got = increase(&cfg);
            assert!(
                (got - expect).abs() <= 0.025,
                "{}: got {got:.3}, paper {expect}",
                cfg.label()
            );
        }
    }

    #[test]
    fn pop_costs_more_than_depop() {
        let depop = increase(&NetworkConfig::half_ruche(dims(), 2, Depopulated));
        let pop = increase(&NetworkConfig::half_ruche(dims(), 2, FullyPopulated));
        assert!(pop > depop);
    }

    #[test]
    fn higher_rf_costs_slightly_more_wiring() {
        let r2 = increase(&NetworkConfig::half_ruche(dims(), 2, Depopulated));
        let r3 = increase(&NetworkConfig::half_ruche(dims(), 3, Depopulated));
        assert!(r3 > r2);
        assert!(r3 - r2 < 0.02, "wiring increment is small: {}", r3 - r2);
    }

    #[test]
    fn full_ruche_pays_both_axes() {
        let half = increase(&NetworkConfig::half_ruche(dims(), 2, Depopulated));
        let full = increase(&NetworkConfig::full_ruche(dims(), 2, Depopulated));
        assert!(full > half);
    }
}
