//! Cycle-time model and the area-vs-cycle-time sweep (Figure 7).
//!
//! The critical path of a single-cycle router is route compute → output
//! arbitration (round-robin) or switch allocation (wavefront) → crossbar
//! mux tree → inter-tile wire, plus clocking overhead, all in FO4 units.
//! The wavefront allocator's O(n)-cell critical diagonal is what keeps the
//! torus router from reaching the Ruche routers' cycle times (Figure 7).
//!
//! As the synthesis target approaches the minimum cycle time, gate upsizing
//! inflates logic area along the classic energy-delay banana curve; below
//! the minimum the model reports a timing violation (`None`), matching how
//! the paper's sweep terminates.

use crate::area::{router_area, AreaBreakdown, RouterParams};
use crate::tech::Tech;

/// Minimum achievable cycle time of the router, in FO4.
pub fn min_cycle_time_fo4(p: &RouterParams, tech: &Tech) -> f64 {
    let mux_levels = (p.max_mux.max(2) as f64).log2();
    let path = if p.is_vc {
        // route compute (VC) + VC select + wavefront diagonal + mux tree.
        tech.decode_vc_delay_fo4
            + tech.vc_sel_delay_fo4
            + tech.wavefront_delay_per_cell_fo4 * (2 * p.ports) as f64
            + tech.mux_delay_per_level_fo4 * mux_levels
    } else {
        // route compute + round-robin arbiter + mux tree. The arbiter sees
        // at most max_mux requesters.
        let arb_levels = (p.max_mux.max(2) as f64).log2();
        tech.decode_delay_fo4
            + tech.arb_delay_per_level_fo4 * arb_levels
            + tech.mux_delay_per_level_fo4 * mux_levels
    };
    tech.clk_overhead_fo4 + path + tech.wire_delay_fo4
}

/// Cell area when synthesized at `target_fo4`, or `None` on a timing
/// violation (`target_fo4 < min_cycle_time_fo4`).
///
/// Logic area (crossbar, decode, arbitration) inflates as the target
/// approaches the wall; FIFO storage inflates much less (flops are already
/// sized).
pub fn area_at(p: &RouterParams, tech: &Tech, target_fo4: f64) -> Option<AreaBreakdown> {
    let t_min = min_cycle_time_fo4(p, tech);
    if target_fo4 < t_min {
        return None;
    }
    let relaxed = router_area(p, tech);
    // Gate-sizing inflation: ~1 at 2×Tmin and beyond, grows hyperbolically
    // toward the wall (≈ +45% at 1.1×Tmin).
    let slack = (target_fo4 - t_min).max(1e-9);
    let logic_inflation = 1.0 + 0.045 * (t_min / slack).min(12.0);
    let storage_inflation = 1.0 + 0.3 * (logic_inflation - 1.0);
    Some(AreaBreakdown {
        crossbar: relaxed.crossbar * logic_inflation,
        decode: relaxed.decode * logic_inflation,
        fifo: relaxed.fifo * storage_inflation,
        allocator: relaxed.allocator * logic_inflation,
    })
}

/// One point of the Figure 7 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Synthesis target, FO4.
    pub target_fo4: f64,
    /// Total cell area, µm² (`None` = timing violation).
    pub area_um2: Option<f64>,
}

/// Sweeps the synthesis target downward from `from_fo4` in `step_fo4`
/// decrements until a timing violation, mirroring the paper's methodology
/// ("decrease the cycle time with a fixed decrement until a timing
/// violation is detected").
pub fn area_sweep(p: &RouterParams, tech: &Tech, from_fo4: f64, step_fo4: f64) -> Vec<SweepPoint> {
    assert!(step_fo4 > 0.0, "sweep step must be positive");
    let mut points = Vec::new();
    let mut t = from_fo4;
    loop {
        let area = area_at(p, tech, t).map(|a| a.total());
        let violated = area.is_none();
        points.push(SweepPoint {
            target_fo4: t,
            area_um2: area,
        });
        if violated || t <= step_fo4 {
            break;
        }
        t -= step_fo4;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruche_noc::geometry::Dims;
    use ruche_noc::prelude::*;
    use ruche_noc::topology::CrossbarScheme::{Depopulated, FullyPopulated};

    fn params(cfg: &NetworkConfig) -> RouterParams {
        RouterParams::of(cfg)
    }

    fn dims() -> Dims {
        Dims::new(8, 8)
    }

    #[test]
    fn torus_min_cycle_time_is_much_higher() {
        let tech = Tech::n12();
        let mesh = min_cycle_time_fo4(&params(&NetworkConfig::mesh(dims())), &tech);
        let pop = min_cycle_time_fo4(
            &params(&NetworkConfig::full_ruche(dims(), 3, FullyPopulated)),
            &tech,
        );
        let depop = min_cycle_time_fo4(
            &params(&NetworkConfig::full_ruche(dims(), 3, Depopulated)),
            &tech,
        );
        let torus = min_cycle_time_fo4(&params(&NetworkConfig::torus(dims())), &tech);
        // Figure 7 orderings: mesh lowest; pop/depop about equal, slightly
        // above mesh; torus far above all.
        assert!(mesh < depop && mesh < pop);
        assert!((pop - depop).abs() < 2.0, "pop {pop} vs depop {depop}");
        assert!(torus > 1.3 * pop, "torus {torus} vs pop {pop}");
    }

    #[test]
    fn multimesh_min_cycle_comparable_to_ruche() {
        let tech = Tech::n12();
        let mm = min_cycle_time_fo4(&params(&NetworkConfig::multi_mesh(dims())), &tech);
        let pop = min_cycle_time_fo4(
            &params(&NetworkConfig::full_ruche(dims(), 3, FullyPopulated)),
            &tech,
        );
        assert!((mm - pop).abs() < 2.0, "mm {mm} vs pop {pop}");
    }

    #[test]
    fn area_at_violates_below_minimum() {
        let tech = Tech::n12();
        let p = params(&NetworkConfig::mesh(dims()));
        let t_min = min_cycle_time_fo4(&p, &tech);
        assert!(area_at(&p, &tech, t_min - 0.1).is_none());
        assert!(area_at(&p, &tech, t_min + 0.1).is_some());
    }

    #[test]
    fn area_rises_as_target_tightens() {
        let tech = Tech::n12();
        let p = params(&NetworkConfig::full_ruche(dims(), 3, Depopulated));
        let relaxed = area_at(&p, &tech, 98.0).unwrap().total();
        let t_min = min_cycle_time_fo4(&p, &tech);
        let tight = area_at(&p, &tech, t_min * 1.1).unwrap().total();
        assert!(tight > 1.2 * relaxed, "tight {tight} vs relaxed {relaxed}");
    }

    #[test]
    fn depop_cheaper_than_torus_at_every_feasible_target() {
        // Figure 7: the depopulated Full Ruche curve sits below the torus
        // curve wherever both are feasible.
        let tech = Tech::n12();
        let depop = params(&NetworkConfig::full_ruche(dims(), 3, Depopulated));
        let torus = params(&NetworkConfig::torus(dims()));
        for t in [98.0, 80.0, 60.0, 45.0] {
            let (Some(a), Some(b)) = (area_at(&depop, &tech, t), area_at(&torus, &tech, t)) else {
                continue;
            };
            assert!(
                a.total() < b.total(),
                "at {t} FO4: {} vs {}",
                a.total(),
                b.total()
            );
        }
    }

    #[test]
    fn sweep_terminates_at_violation() {
        let tech = Tech::n12();
        let p = params(&NetworkConfig::mesh(dims()));
        let pts = area_sweep(&p, &tech, 98.0, 4.0);
        assert!(pts.len() > 10);
        assert!(pts.last().unwrap().area_um2.is_none(), "ends in violation");
        assert!(pts[..pts.len() - 1].iter().all(|p| p.area_um2.is_some()));
        // Monotone increasing area as targets tighten.
        let areas: Vec<f64> = pts.iter().filter_map(|p| p.area_um2).collect();
        assert!(areas.windows(2).all(|w| w[1] >= w[0]), "{areas:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_panics() {
        let tech = Tech::n12();
        let p = params(&NetworkConfig::mesh(dims()));
        area_sweep(&p, &tech, 98.0, 0.0);
    }

    #[test]
    fn ruche_reaches_much_lower_cycle_time_than_torus_without_pipelining() {
        // The paper's key claim (§3.2, Figure 7): Ruche routers achieve
        // competitive cycle time without pipelining, torus would need it.
        let tech = Tech::n12();
        let pop = params(&NetworkConfig::full_ruche(dims(), 3, FullyPopulated));
        let torus = params(&NetworkConfig::torus(dims()));
        let t_pop = min_cycle_time_fo4(&pop, &tech);
        let t_torus = min_cycle_time_fo4(&torus, &tech);
        assert!(area_at(&pop, &tech, t_pop + 1.0).is_some());
        assert!(area_at(&torus, &tech, t_pop + 1.0).is_none());
        assert!(t_torus - t_pop > 5.0);
    }
}
