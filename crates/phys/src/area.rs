//! Router area model (Table 2).
//!
//! Area at relaxed timing is dominated by structural quantities the model
//! counts exactly: crossbar mux inputs × channel width, FIFO bit-slots,
//! per-VC read muxes, route-compute units, arbiter request counts, and
//! wavefront allocator cells. Unit costs come from [`crate::tech::Tech`].

use crate::tech::Tech;
use ruche_noc::crossbar::Connectivity;
use ruche_noc::geometry::Dir;
use ruche_noc::topology::NetworkConfig;
use serde::{Deserialize, Serialize};

/// Structural parameters of one router, extracted from a network
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterParams {
    /// Report label (e.g. `ruche2-depop`).
    pub label: String,
    /// Number of ports (inputs = outputs).
    pub ports: usize,
    /// Channel width in bits.
    pub channel_bits: u32,
    /// Total crossbar connections (Σ mux inputs over outputs).
    pub conns: usize,
    /// Mux inputs per output, indexed by port order.
    pub mux_inputs: Vec<usize>,
    /// Largest output mux.
    pub max_mux: usize,
    /// Total FIFO slots (ports × VCs × depth).
    pub fifo_slots: usize,
    /// Σ over ports of (VCs − 1): the number of extra VC read muxes.
    pub extra_vcs: usize,
    /// Route-compute units (one per input VC).
    pub route_computes: usize,
    /// Whether this is a VC router (wavefront allocator, VC decode).
    pub is_vc: bool,
}

impl RouterParams {
    /// Extracts router parameters from a network configuration.
    pub fn of(cfg: &NetworkConfig) -> Self {
        let conn = Connectivity::of(cfg);
        let ports: Vec<Dir> = cfg.ports();
        let mux_inputs: Vec<usize> = ports.iter().map(|&p| conn.mux_inputs(p)).collect();
        let fifo_slots: usize = ports.iter().map(|&p| cfg.vcs(p) * cfg.fifo_depth).sum();
        let extra_vcs: usize = ports.iter().map(|&p| cfg.vcs(p) - 1).sum();
        let route_computes: usize = ports.iter().map(|&p| cfg.vcs(p)).sum();
        RouterParams {
            label: cfg.label(),
            ports: ports.len(),
            channel_bits: cfg.channel_width_bits,
            conns: conn.connection_count(),
            max_mux: conn.max_mux_inputs(),
            mux_inputs,
            fifo_slots,
            extra_vcs,
            route_computes,
            is_vc: cfg.is_vc_router(),
        }
    }
}

/// Router cell-area breakdown in µm², mirroring the paper's Table 2 rows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Crossbar muxes.
    pub crossbar: f64,
    /// Route compute.
    pub decode: f64,
    /// Input FIFO storage (plus VC read muxes for VC routers — the paper's
    /// "VC" row).
    pub fifo: f64,
    /// Output arbiters (wormhole) or the wavefront allocator (VC).
    pub allocator: f64,
}

impl AreaBreakdown {
    /// Total router cell area, µm².
    pub fn total(&self) -> f64 {
        self.crossbar + self.decode + self.fifo + self.allocator
    }
}

/// Router area at fully relaxed timing (the paper's ~98 FO4 column).
pub fn router_area(p: &RouterParams, tech: &Tech) -> AreaBreakdown {
    let w = p.channel_bits as f64;
    let mux2_count: usize = p.mux_inputs.iter().map(|&k| k.saturating_sub(1)).sum();
    let crossbar = tech.xbar_um2_per_bit_conn * w * mux2_count as f64;
    let decode = p.route_computes as f64
        * if p.is_vc {
            tech.decode_vc_um2
        } else {
            tech.decode_simple_um2
        };
    let fifo = p.fifo_slots as f64 * w * tech.fifo_um2_per_bit
        + p.extra_vcs as f64 * w * tech.vc_mux_um2_per_bit;
    let allocator = if p.is_vc {
        (p.ports * p.ports) as f64 * tech.wavefront_um2_per_cell
    } else {
        p.conns as f64 * tech.arb_um2_per_conn
    };
    AreaBreakdown {
        crossbar,
        decode,
        fifo,
        allocator,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruche_noc::geometry::Dims;
    use ruche_noc::topology::CrossbarScheme::{Depopulated, FullyPopulated};

    fn within(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() / expected <= tol
    }

    fn area(cfg: &NetworkConfig) -> AreaBreakdown {
        router_area(&RouterParams::of(cfg), &Tech::n12())
    }

    fn dims() -> Dims {
        Dims::new(8, 8)
    }

    #[test]
    fn table2_multimesh_breakdown() {
        let a = area(&NetworkConfig::multi_mesh(dims()));
        assert!(within(a.crossbar, 791.0, 0.12), "xbar {}", a.crossbar);
        assert!(within(a.decode, 96.0, 0.12), "decode {}", a.decode);
        assert!(within(a.fifo, 2250.0, 0.05), "fifo {}", a.fifo);
        assert!(within(a.allocator, 53.0, 0.12), "arb {}", a.allocator);
        assert!(within(a.total(), 3190.0, 0.08), "total {}", a.total());
    }

    #[test]
    fn table2_full_ruche_depop_breakdown() {
        let a = area(&NetworkConfig::full_ruche(dims(), 3, Depopulated));
        assert!(within(a.crossbar, 599.0, 0.12), "xbar {}", a.crossbar);
        assert!(within(a.decode, 99.0, 0.12), "decode {}", a.decode);
        assert!(within(a.fifo, 2250.0, 0.05), "fifo {}", a.fifo);
        assert!(within(a.allocator, 42.0, 0.12), "arb {}", a.allocator);
        assert!(within(a.total(), 2991.0, 0.08), "total {}", a.total());
    }

    #[test]
    fn table2_full_ruche_pop_breakdown() {
        let a = area(&NetworkConfig::full_ruche(dims(), 3, FullyPopulated));
        assert!(within(a.crossbar, 986.0, 0.15), "xbar {}", a.crossbar);
        assert!(within(a.total(), 3411.0, 0.08), "total {}", a.total());
    }

    #[test]
    fn table2_torus_breakdown() {
        let a = area(&NetworkConfig::torus(dims()));
        assert!(within(a.crossbar, 410.0, 0.12), "xbar {}", a.crossbar);
        assert!(within(a.decode, 349.0, 0.12), "decode {}", a.decode);
        assert!(within(a.fifo, 2435.0, 0.05), "vc {}", a.fifo);
        assert!(within(a.allocator, 194.0, 0.12), "alloc {}", a.allocator);
        assert!(within(a.total(), 3388.0, 0.08), "total {}", a.total());
    }

    #[test]
    fn paper_headline_area_orderings() {
        // §4.2: depop saves ~40% crossbar vs the doubled mesh crossbars of
        // multi-mesh... (Table 2: 599 vs 986 pop); depop total is ~12%
        // below torus; pop is the largest.
        let mm = area(&NetworkConfig::multi_mesh(dims()));
        let depop = area(&NetworkConfig::full_ruche(dims(), 3, Depopulated));
        let pop = area(&NetworkConfig::full_ruche(dims(), 3, FullyPopulated));
        let torus = area(&NetworkConfig::torus(dims()));
        assert!(depop.crossbar < 0.65 * pop.crossbar);
        assert!(depop.total() < mm.total());
        assert!(depop.total() < torus.total());
        assert!(pop.total() > torus.total());
        let mesh = area(&NetworkConfig::mesh(dims()));
        assert!(mesh.total() < depop.total());
    }

    #[test]
    fn area_scales_with_channel_width() {
        let mut cfg = NetworkConfig::mesh(dims());
        let a128 = area(&cfg);
        cfg.channel_width_bits = 64;
        let a64 = area(&cfg);
        assert!(within(a64.crossbar * 2.0, a128.crossbar, 1e-9));
        assert!(a64.total() < a128.total());
        // Decode does not scale with width.
        assert_eq!(a64.decode, a128.decode);
    }

    #[test]
    fn params_capture_structure() {
        let p = RouterParams::of(&NetworkConfig::full_ruche(dims(), 3, FullyPopulated));
        assert_eq!(p.ports, 9);
        assert_eq!(p.conns, 45);
        assert_eq!(p.max_mux, 9);
        assert_eq!(p.fifo_slots, 18);
        assert_eq!(p.extra_vcs, 0);
        assert!(!p.is_vc);
        let t = RouterParams::of(&NetworkConfig::torus(dims()));
        assert_eq!(t.fifo_slots, 18);
        assert_eq!(t.extra_vcs, 4);
        assert_eq!(t.route_computes, 9);
        assert!(t.is_vc);
    }
}
