//! Property-based tests of the physical models: monotonicity, scaling
//! laws, and internal consistency across randomized configurations.

// Randomized sweeps are too slow at interpreter speed; Miri runs the
// concurrency subset (noc pool/shard), not the numeric property suites.
#![cfg(not(miri))]

use proptest::prelude::*;
use ruche_noc::geometry::{Dims, Dir};
use ruche_noc::prelude::*;
use ruche_phys::{
    area_at, min_cycle_time_fo4, router_area, tile_area_increase, EnergyModel, RouterParams, Tech,
};

fn arb_config() -> impl Strategy<Value = NetworkConfig> {
    (0u8..=5, 2u16..=4, any::<bool>()).prop_map(|(kind, rf, pop)| {
        let dims = Dims::new(12, 12);
        let scheme = if pop {
            CrossbarScheme::FullyPopulated
        } else {
            CrossbarScheme::Depopulated
        };
        match kind {
            0 => NetworkConfig::mesh(dims),
            1 => NetworkConfig::multi_mesh(dims),
            2 => NetworkConfig::torus(dims),
            3 => NetworkConfig::half_torus(dims),
            4 => NetworkConfig::full_ruche(dims, rf, scheme),
            _ => NetworkConfig::half_ruche(dims, rf, scheme),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Area is positive, finite, and strictly increasing in channel width.
    #[test]
    fn area_monotone_in_width(cfg in arb_config()) {
        let tech = Tech::n12();
        let mut prev = 0.0;
        for bits in [32u32, 64, 128, 256] {
            let mut c = cfg.clone();
            c.channel_width_bits = bits;
            let a = router_area(&RouterParams::of(&c), &tech).total();
            prop_assert!(a.is_finite() && a > prev, "width {bits}: {a} > {prev}");
            prev = a;
        }
    }

    /// Tighter timing targets never decrease area; below minimum is a
    /// violation; far above minimum converges to the relaxed area.
    #[test]
    fn area_vs_timing_shape(cfg in arb_config()) {
        let tech = Tech::n12();
        let p = RouterParams::of(&cfg);
        let t_min = min_cycle_time_fo4(&p, &tech);
        prop_assert!(t_min > 5.0 && t_min < 60.0, "plausible FO4: {t_min}");
        prop_assert!(area_at(&p, &tech, t_min - 0.5).is_none());
        let mut prev = f64::INFINITY;
        for t in [t_min + 1.0, t_min + 4.0, t_min * 2.0, 200.0] {
            let a = area_at(&p, &tech, t).expect("feasible").total();
            prop_assert!(a <= prev + 1e-9, "monotone: {a} <= {prev} at {t}");
            prev = a;
        }
        let relaxed = router_area(&p, &tech).total();
        let far = area_at(&p, &tech, 400.0).unwrap().total();
        prop_assert!((far - relaxed) / relaxed < 0.1, "converges to relaxed");
    }

    /// Per-hop energies are positive and increase with the output's mux
    /// size within one router.
    #[test]
    fn energy_sanity(cfg in arb_config()) {
        let model = EnergyModel::new(&cfg, Tech::n12());
        let conn = ruche_noc::crossbar::Connectivity::of(&cfg);
        let mut by_mux: Vec<(usize, f64)> = cfg
            .ports()
            .into_iter()
            .filter(|&d| d != Dir::P)
            .map(|d| (conn.mux_inputs(d), model.router_energy_pj(d)))
            .collect();
        by_mux.sort_by_key(|&(k, _)| k);
        for w in by_mux.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 - 1e-9, "bigger mux, more energy: {by_mux:?}");
        }
    }

    /// Tile area increase is ≥ 1 for every topology, exactly 1 for mesh,
    /// and bounded (< 1.25) for all evaluated configurations.
    #[test]
    fn tile_area_bounds(cfg in arb_config()) {
        let inc = tile_area_increase(&cfg, &Tech::n12());
        prop_assert!(inc >= 1.0 - 1e-12);
        prop_assert!(inc < 1.25, "{}: {inc}", cfg.label());
        if matches!(cfg.topology, TopologyKind::Mesh) {
            prop_assert!((inc - 1.0).abs() < 1e-12);
        }
    }

    /// Wormhole routers always reach lower minimum cycle time than the VC
    /// torus router at the same width.
    #[test]
    fn wormhole_beats_vc_cycle_time(rf in 2u16..=4, pop in any::<bool>()) {
        let dims = Dims::new(12, 12);
        let tech = Tech::n12();
        let scheme = if pop { CrossbarScheme::FullyPopulated } else { CrossbarScheme::Depopulated };
        let ruche = min_cycle_time_fo4(
            &RouterParams::of(&NetworkConfig::full_ruche(dims, rf, scheme)),
            &tech,
        );
        let torus = min_cycle_time_fo4(&RouterParams::of(&NetworkConfig::torus(dims)), &tech);
        prop_assert!(ruche < torus);
    }
}
