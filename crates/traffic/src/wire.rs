//! The versioned request/result wire API for sweeps.
//!
//! [`SweepRequest`] is the canonical identity of one sweep point — a
//! network configuration plus a testbench — with an explicit
//! [`SweepRequest::KEY_VERSION`] and a byte-stable JSON rendering that the
//! sweep service, the result store, and `repro` all share. It replaces the
//! old `format!("{:?}", cfg)` cache key: a `Debug` rendering no external
//! client can construct, and whose stability was an accident of `derive`.
//!
//! [`TbResult`] gets the same treatment on the response side:
//! [`TbResult::VERSION`], plus an exact JSON round-trip ([`TbResult::to_wire`]
//! / [`TbResult::from_wire`]) in the discipline of `NetSnapshot::VERSION` —
//! every float in shortest-roundtrip form, per-tile Welford accumulators
//! serialized by raw parts, so decode(encode(r)) is bit-identical to `r`
//! and the daemon can stream stored results verbatim.

use crate::pattern::Pattern;
use crate::testbench::{TbResult, Testbench};
use ruche_noc::fault::FaultModel;
use ruche_noc::geometry::Coord;
use ruche_noc::topology::NetworkConfig;
use ruche_noc::wire::{get_bool, get_f64, get_u64, opt_str, opt_u64, WireError};
use ruche_stats::Accum;
use ruche_telemetry::json::Json;

impl Pattern {
    /// The wire form, e.g. `{"kind":"tornado"}`; hotspot carries its
    /// target as `{"kind":"hotspot","x":X,"y":Y}`.
    pub fn to_wire(self) -> Json {
        let mut fields = vec![("kind".to_string(), Json::Str(self.name().into()))];
        if let Pattern::Hotspot(c) = self {
            fields.push(("x".into(), Json::U64(c.x as u64)));
            fields.push(("y".into(), Json::U64(c.y as u64)));
        }
        Json::Obj(fields)
    }

    /// Decodes the wire form of [`Pattern::to_wire`]. Spellings are the
    /// [`Pattern::name`] strings.
    ///
    /// # Errors
    ///
    /// A [`WireError`] naming the missing or malformed field.
    pub fn from_wire(v: &Json) -> Result<Self, WireError> {
        let kind = opt_str(v, "kind")?.ok_or_else(|| WireError::new("pattern.kind", "missing"))?;
        match kind {
            "uniform-random" => Ok(Pattern::UniformRandom),
            "bit-complement" => Ok(Pattern::BitComplement),
            "transpose" => Ok(Pattern::Transpose),
            "tornado" => Ok(Pattern::Tornado),
            "tile-to-memory" => Ok(Pattern::TileToMemory),
            "neighbor" => Ok(Pattern::Neighbor),
            "hotspot" => {
                let c = Coord::from_wire(v)
                    .map_err(|e| WireError::new(format!("pattern.{}", e.field), e.reason))?;
                Ok(Pattern::Hotspot(c))
            }
            other => Err(WireError::new(
                "pattern.kind",
                format!("unknown pattern {other:?}"),
            )),
        }
    }
}

impl Testbench {
    /// The canonical wire form. An empty fault model is omitted entirely —
    /// the same discipline as the `Debug` rendering, so unfaulted
    /// testbenches keep one stable identity whether or not the client's
    /// schema knows about faults.
    pub fn to_wire(&self) -> Json {
        let mut fields = vec![
            ("pattern".to_string(), self.pattern.to_wire()),
            ("injection_rate".into(), Json::F64(self.injection_rate)),
            ("warmup".into(), Json::U64(self.warmup)),
            ("measure".into(), Json::U64(self.measure)),
            ("drain".into(), Json::U64(self.drain)),
            ("packet_len".into(), Json::U64(self.packet_len as u64)),
            ("seed".into(), Json::U64(self.seed)),
        ];
        if !self.faults.is_empty() {
            fields.push(("faults".into(), self.faults.to_wire()));
        }
        Json::Obj(fields)
    }

    /// Decodes the wire form of [`Testbench::to_wire`].
    ///
    /// Required: `pattern` and `injection_rate`. Window lengths default to
    /// [`Testbench::DEFAULT_WINDOWS`], the seed to
    /// [`Testbench::DEFAULT_SEED`], `packet_len` to 1, and `faults` to
    /// empty. The result is **unvalidated** — callers run
    /// [`Testbench::validate`] (the service front door does), so a
    /// decodable testbench with, say, a NaN injection rate still fails
    /// with a structured error before any simulation starts.
    ///
    /// # Errors
    ///
    /// A [`WireError`] naming the missing or malformed field.
    pub fn from_wire(v: &Json) -> Result<Self, WireError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(WireError::new("testbench", "expected an object"));
        }
        let pattern = Pattern::from_wire(
            v.get("pattern")
                .ok_or_else(|| WireError::new("pattern", "missing"))?,
        )?;
        let injection_rate = get_f64(v, "injection_rate")?;
        let faults = match v.get("faults") {
            None => FaultModel::default(),
            Some(f) => FaultModel::from_wire(f)
                .map_err(|e| WireError::new(format!("faults.{}", e.field), e.reason))?,
        };
        let packet_len = opt_u64(v, "packet_len")?.unwrap_or(1);
        Ok(Testbench {
            pattern,
            injection_rate,
            warmup: opt_u64(v, "warmup")?.unwrap_or(Self::DEFAULT_WINDOWS.0),
            measure: opt_u64(v, "measure")?.unwrap_or(Self::DEFAULT_WINDOWS.1),
            drain: opt_u64(v, "drain")?.unwrap_or(Self::DEFAULT_WINDOWS.2),
            packet_len: usize::try_from(packet_len)
                .map_err(|_| WireError::new("packet_len", "does not fit usize"))?,
            seed: opt_u64(v, "seed")?.unwrap_or(Self::DEFAULT_SEED),
            faults,
        })
    }
}

/// One sweep point — a network configuration plus a testbench — in its
/// canonical, versioned wire identity.
///
/// Two requests are the same job exactly when their [`cache_key`]
/// (SweepRequest::cache_key) strings are equal. By construction the key
/// excludes `step_threads` and `step_mode` (the config wire codec never
/// emits them), so results computed by any engine at any thread count are
/// interchangeable — the same contract the old `Debug`-based key upheld.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// The network under test.
    pub cfg: NetworkConfig,
    /// The traffic applied to it.
    pub tb: Testbench,
}

impl SweepRequest {
    /// Version of the request schema **and** of every cache key derived
    /// from it. Bumping this invalidates all stored results at once —
    /// exactly the semantics the old `MODEL_VERSION` prefix had, now
    /// explicit on the wire.
    pub const KEY_VERSION: u64 = 1;

    /// Builds a request.
    pub fn new(cfg: NetworkConfig, tb: Testbench) -> Self {
        SweepRequest { cfg, tb }
    }

    /// The canonical wire form: `key_version` first, then the config and
    /// testbench in their own canonical forms.
    pub fn to_wire(&self) -> Json {
        Json::Obj(vec![
            ("key_version".into(), Json::U64(Self::KEY_VERSION)),
            ("config".into(), self.cfg.to_wire()),
            ("testbench".into(), self.tb.to_wire()),
        ])
    }

    /// Decodes the wire form of [`SweepRequest::to_wire`]. An omitted
    /// `key_version` is read as current; an unknown one is rejected.
    ///
    /// # Errors
    ///
    /// A [`WireError`] naming the missing or malformed field.
    pub fn from_wire(v: &Json) -> Result<Self, WireError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(WireError::new("request", "expected an object"));
        }
        let version = opt_u64(v, "key_version")?.unwrap_or(Self::KEY_VERSION);
        if version != Self::KEY_VERSION {
            return Err(WireError::new(
                "key_version",
                format!(
                    "unsupported version {version}; this build speaks {}",
                    Self::KEY_VERSION
                ),
            ));
        }
        let cfg = NetworkConfig::from_wire(
            v.get("config")
                .ok_or_else(|| WireError::new("config", "missing"))?,
        )?;
        let tb = Testbench::from_wire(
            v.get("testbench")
                .ok_or_else(|| WireError::new("testbench", "missing"))?,
        )?;
        Ok(SweepRequest { cfg, tb })
    }

    /// The canonical cache key: the rendered wire form. Byte-stable across
    /// processes, versions explicitly, and constructible by any client
    /// that can write JSON.
    pub fn cache_key(&self) -> String {
        self.to_wire().render()
    }
}

impl TbResult {
    /// Version of the result wire schema. Stored results carry it; a
    /// decoder seeing a different version rejects the entry (the store
    /// then treats it as a miss) instead of misreading fields.
    pub const VERSION: u64 = 1;

    /// The exact wire form: floats in shortest-roundtrip rendering,
    /// per-tile accumulators as raw `[count, mean, m2, min, max]` Welford
    /// parts. [`TbResult::from_wire`] reconstructs a bit-identical value,
    /// non-finite statistics included.
    pub fn to_wire(&self) -> Json {
        Json::Obj(vec![
            ("result_version".into(), Json::U64(Self::VERSION)),
            ("offered".into(), Json::F64(self.offered)),
            ("accepted".into(), Json::F64(self.accepted)),
            ("avg_latency".into(), Json::F64(self.avg_latency)),
            ("p99_latency".into(), Json::F64(self.p99_latency)),
            ("delivered".into(), Json::U64(self.delivered)),
            ("lost".into(), Json::U64(self.lost)),
            (
                "per_tile_latency".into(),
                Json::Arr(
                    self.per_tile_latency
                        .iter()
                        .map(|a| {
                            let (count, mean, m2, min, max) = a.to_parts();
                            Json::Arr(vec![
                                Json::U64(count),
                                Json::F64(mean),
                                Json::F64(m2),
                                Json::F64(min),
                                Json::F64(max),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("saturated".into(), Json::Bool(self.saturated)),
        ])
    }

    /// Decodes the wire form of [`TbResult::to_wire`]. Every field is
    /// required; the version must match [`TbResult::VERSION`].
    ///
    /// # Errors
    ///
    /// A [`WireError`] naming the missing or malformed field, or an
    /// unsupported `result_version`.
    pub fn from_wire(v: &Json) -> Result<Self, WireError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(WireError::new("result", "expected an object"));
        }
        let version = get_u64(v, "result_version")?;
        if version != Self::VERSION {
            return Err(WireError::new(
                "result_version",
                format!(
                    "unsupported version {version}; this build speaks {}",
                    Self::VERSION
                ),
            ));
        }
        let tiles = v
            .get("per_tile_latency")
            .ok_or_else(|| WireError::new("per_tile_latency", "missing"))?
            .as_arr()
            .ok_or_else(|| WireError::new("per_tile_latency", "expected an array"))?;
        let mut per_tile_latency = Vec::with_capacity(tiles.len());
        for (i, t) in tiles.iter().enumerate() {
            let parts = t.as_arr().filter(|p| p.len() == 5).ok_or_else(|| {
                WireError::new(
                    format!("per_tile_latency[{i}]"),
                    "expected [count, mean, m2, min, max]",
                )
            })?;
            let field = |j: usize| format!("per_tile_latency[{i}][{j}]");
            let count = parts[0]
                .as_u64()
                .ok_or_else(|| WireError::new(field(0), "expected an unsigned integer"))?;
            let mut nums = [0.0f64; 4];
            for (j, n) in nums.iter_mut().enumerate() {
                *n = parts[j + 1]
                    .as_f64()
                    .ok_or_else(|| WireError::new(field(j + 1), "expected a number"))?;
            }
            per_tile_latency.push(Accum::from_parts(count, nums[0], nums[1], nums[2], nums[3]));
        }
        Ok(TbResult {
            offered: get_f64(v, "offered")?,
            accepted: get_f64(v, "accepted")?,
            avg_latency: get_f64(v, "avg_latency")?,
            p99_latency: get_f64(v, "p99_latency")?,
            delivered: get_u64(v, "delivered")?,
            lost: get_u64(v, "lost")?,
            per_tile_latency,
            saturated: get_bool(v, "saturated")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;
    use ruche_noc::geometry::{Dims, Dir};
    use ruche_noc::topology::{CrossbarScheme, StepMode};
    use ruche_telemetry::json::parse;

    fn quick(rate: f64) -> Testbench {
        Testbench::builder(Pattern::UniformRandom, rate)
            .quick()
            .build()
            .expect("valid")
    }

    #[test]
    fn every_pattern_roundtrips() {
        for p in [
            Pattern::UniformRandom,
            Pattern::BitComplement,
            Pattern::Transpose,
            Pattern::Tornado,
            Pattern::Hotspot(Coord::new(3, 5)),
            Pattern::TileToMemory,
            Pattern::Neighbor,
        ] {
            let wire = p.to_wire().render();
            let back = Pattern::from_wire(&parse(&wire).expect("parses")).expect("decodes");
            assert_eq!(back, p, "{wire}");
            assert_eq!(back.to_wire().render(), wire);
        }
        assert_eq!(
            Pattern::from_wire(&parse(r#"{"kind":"zigzag"}"#).unwrap())
                .unwrap_err()
                .field,
            "pattern.kind"
        );
    }

    #[test]
    fn testbench_roundtrips_with_and_without_faults() {
        let plain = quick(0.15);
        let faulted = crate::testbench::TestbenchBuilder::from(plain.clone())
            .faults(
                FaultModel::default()
                    .kill_link(Coord::new(1, 1), Dir::E)
                    .kill_router(Coord::new(2, 0)),
            )
            .build()
            .unwrap();
        for tb in [&plain, &faulted] {
            let wire = tb.to_wire().render();
            let back = Testbench::from_wire(&parse(&wire).unwrap()).unwrap();
            assert_eq!(&back, tb, "{wire}");
            assert_eq!(back.to_wire().render(), wire);
        }
        assert!(!plain.to_wire().render().contains("faults"));
        assert!(faulted.to_wire().render().contains("faults"));
    }

    #[test]
    fn minimal_testbench_gets_paper_defaults() {
        let v = parse(r#"{"pattern":{"kind":"tornado"},"injection_rate":0.25}"#).unwrap();
        let tb = Testbench::from_wire(&v).unwrap();
        assert_eq!(tb.pattern, Pattern::Tornado);
        assert_eq!(tb.injection_rate, 0.25);
        assert_eq!(
            (tb.warmup, tb.measure, tb.drain),
            Testbench::DEFAULT_WINDOWS
        );
        assert_eq!(tb.packet_len, 1);
        assert_eq!(tb.seed, Testbench::DEFAULT_SEED);
        assert!(tb.faults.is_empty());
    }

    #[test]
    fn request_key_is_engine_and_threading_independent() {
        let dims = Dims::new(8, 8);
        let base = SweepRequest::new(NetworkConfig::mesh(dims), quick(0.1));
        let tuned = SweepRequest::new(
            NetworkConfig::mesh(dims)
                .with_step_threads(4)
                .with_step_mode(StepMode::EventDriven),
            quick(0.1),
        );
        assert_eq!(base.cache_key(), tuned.cache_key());
        // But every semantic knob splits the key.
        let other_cfg = SweepRequest::new(
            NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated),
            quick(0.1),
        );
        let other_rate = SweepRequest::new(NetworkConfig::mesh(dims), quick(0.2));
        assert_ne!(base.cache_key(), other_cfg.cache_key());
        assert_ne!(base.cache_key(), other_rate.cache_key());
        // The version is explicit in the key bytes.
        assert!(base.cache_key().contains("\"key_version\":1"));
    }

    #[test]
    fn request_roundtrips_canonically() {
        let req = SweepRequest::new(
            NetworkConfig::half_ruche(Dims::new(16, 8), 3, CrossbarScheme::FullyPopulated),
            quick(0.07),
        );
        let wire = req.cache_key();
        let back = SweepRequest::from_wire(&parse(&wire).unwrap()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.cache_key(), wire);
        // Unknown key versions are rejected, not guessed at.
        let stale = wire.replace("\"key_version\":1", "\"key_version\":9");
        assert_eq!(
            SweepRequest::from_wire(&parse(&stale).unwrap())
                .unwrap_err()
                .field,
            "key_version"
        );
    }

    #[test]
    fn real_results_roundtrip_bit_exactly() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        let res = run(&cfg, &quick(0.1)).unwrap();
        let wire = res.to_wire().render();
        let back = TbResult::from_wire(&parse(&wire).unwrap()).unwrap();
        assert_eq!(back.offered.to_bits(), res.offered.to_bits());
        assert_eq!(back.accepted.to_bits(), res.accepted.to_bits());
        assert_eq!(back.avg_latency.to_bits(), res.avg_latency.to_bits());
        assert_eq!(back.p99_latency.to_bits(), res.p99_latency.to_bits());
        assert_eq!(back.delivered, res.delivered);
        assert_eq!(back.lost, res.lost);
        assert_eq!(back.saturated, res.saturated);
        assert_eq!(back.per_tile_latency.len(), res.per_tile_latency.len());
        for (a, b) in back.per_tile_latency.iter().zip(&res.per_tile_latency) {
            assert_eq!(a, b);
        }
        // Canonical: encode(decode(x)) is byte-identical.
        assert_eq!(back.to_wire().render(), wire);
        assert!(wire.contains("\"result_version\":1"));
    }

    #[test]
    fn empty_accumulators_with_infinite_bounds_survive_the_wire() {
        // A silent tile's accumulator holds min=+inf, max=-inf — the wire
        // must carry non-finite floats losslessly.
        let res = TbResult {
            offered: 0.1,
            accepted: 0.099,
            avg_latency: 12.5,
            p99_latency: 30.0,
            delivered: 10,
            lost: 0,
            per_tile_latency: vec![Accum::new(), [4.0, 5.0].into_iter().collect()],
            saturated: false,
        };
        let wire = res.to_wire().render();
        assert!(wire.contains("Infinity"), "{wire}");
        let back = TbResult::from_wire(&parse(&wire).unwrap()).unwrap();
        assert_eq!(back.per_tile_latency[0], Accum::new());
        assert_eq!(back.per_tile_latency[1].mean(), 4.5);
        assert_eq!(back.to_wire().render(), wire);
    }

    #[test]
    fn malformed_results_name_the_field() {
        let cases = [
            (r#"{"offered":0.1}"#, "result_version"),
            (r#"{"result_version":2,"offered":0.1}"#, "result_version"),
            (
                r#"{"result_version":1,"offered":"x","accepted":1.0,"avg_latency":1.0,
                    "p99_latency":1.0,"delivered":1,"lost":0,"per_tile_latency":[],
                    "saturated":false}"#,
                "offered",
            ),
            (
                r#"{"result_version":1,"offered":0.1,"accepted":1.0,"avg_latency":1.0,
                    "p99_latency":1.0,"delivered":1,"lost":0,"per_tile_latency":[[1,2]],
                    "saturated":false}"#,
                "per_tile_latency[0]",
            ),
        ];
        for (body, field) in cases {
            let v = parse(body).unwrap();
            assert_eq!(TbResult::from_wire(&v).unwrap_err().field, field, "{body}");
        }
    }
}
