//! The traffic crate's unified error type.
//!
//! [`TrafficError`] covers everything that can go wrong between a
//! [`TestbenchBuilder`](crate::testbench::TestbenchBuilder) and a finished
//! run: pattern/array mismatches, out-of-range injection parameters,
//! degenerate measurement windows, and rejected network or fault
//! configurations. Every lower-layer error converts in via `From`, and
//! `TrafficError` itself (like [`PatternError`]) converts into
//! [`ruche_noc::Error`], so binaries that mix crates can funnel through one
//! error type instead of pattern-matching per-crate enums.

use crate::pattern::PatternError;
use ruche_noc::fault::FaultError;
use ruche_noc::topology::ConfigError;
use std::fmt;

/// Errors from building or running a [`Testbench`](crate::Testbench).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrafficError {
    /// The destination pattern cannot run on the array.
    Pattern(PatternError),
    /// `injection_rate` must be finite and in `(0, 1]` — a Bernoulli
    /// probability that actually offers load.
    InvalidInjectionRate(f64),
    /// The measurement window is empty (`measure == 0`), so throughput
    /// would divide by zero.
    EmptyMeasureWindow,
    /// The drain budget is zero, so no measured packet could ever land.
    EmptyDrainWindow,
    /// Packets must carry at least one flit (`packet_len == 0`).
    EmptyPacket,
    /// The fault model does not fit the network configuration.
    Fault(FaultError),
    /// The network configuration itself is invalid.
    Config(ConfigError),
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::Pattern(e) => write!(f, "pattern: {e}"),
            TrafficError::InvalidInjectionRate(r) => {
                write!(f, "injection rate {r} outside (0, 1]")
            }
            TrafficError::EmptyMeasureWindow => write!(f, "measurement window is empty"),
            TrafficError::EmptyDrainWindow => write!(f, "drain budget is zero"),
            TrafficError::EmptyPacket => write!(f, "packet length must be at least 1 flit"),
            TrafficError::Fault(e) => write!(f, "fault model: {e}"),
            TrafficError::Config(e) => write!(f, "network config: {e}"),
        }
    }
}

impl std::error::Error for TrafficError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrafficError::Pattern(e) => Some(e),
            TrafficError::Fault(e) => Some(e),
            TrafficError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PatternError> for TrafficError {
    fn from(e: PatternError) -> Self {
        TrafficError::Pattern(e)
    }
}

impl From<FaultError> for TrafficError {
    fn from(e: FaultError) -> Self {
        TrafficError::Fault(e)
    }
}

impl From<ConfigError> for TrafficError {
    fn from(e: ConfigError) -> Self {
        TrafficError::Config(e)
    }
}

// The orphan rule puts these here rather than next to `ruche_noc::Error`:
// the traffic crate owns `PatternError`/`TrafficError`, the noc crate owns
// `Error`, and `Error::Other` is the designed extension point.

impl From<PatternError> for ruche_noc::Error {
    fn from(e: PatternError) -> Self {
        ruche_noc::Error::other(e)
    }
}

impl From<TrafficError> for ruche_noc::Error {
    fn from(e: TrafficError) -> Self {
        match e {
            // Unwrap the variants `ruche_noc::Error` models natively so
            // downstream matching sees the structured form.
            TrafficError::Fault(e) => ruche_noc::Error::from(e),
            TrafficError::Config(e) => ruche_noc::Error::from(e),
            other => ruche_noc::Error::other(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruche_noc::geometry::Coord;

    #[test]
    fn displays_name_the_failing_layer() {
        let e = TrafficError::from(PatternError::NeedsSquareArray);
        assert!(e.to_string().starts_with("pattern:"), "{e}");
        let e = TrafficError::InvalidInjectionRate(1.5);
        assert!(e.to_string().contains("1.5"), "{e}");
        let e = TrafficError::from(FaultError::NoSuchRouter {
            at: Coord::new(9, 9),
        });
        assert!(e.to_string().starts_with("fault model:"), "{e}");
    }

    #[test]
    fn converts_into_the_workspace_error() {
        let noc: ruche_noc::Error = PatternError::NeedsSquareArray.into();
        assert!(noc.to_string().contains("square"), "{noc}");
        let noc: ruche_noc::Error = TrafficError::Fault(FaultError::VcRoutersUnsupported).into();
        assert!(matches!(noc, ruche_noc::Error::Fault(_)), "{noc}");
        let noc: ruche_noc::Error = TrafficError::EmptyMeasureWindow.into();
        assert!(matches!(noc, ruche_noc::Error::Other(_)), "{noc}");
    }

    #[test]
    fn sources_chain_to_the_underlying_error() {
        use std::error::Error as _;
        let e = TrafficError::Pattern(PatternError::NeedsSquareArray);
        assert!(e.source().is_some());
        assert!(TrafficError::EmptyDrainWindow.source().is_none());
    }
}
