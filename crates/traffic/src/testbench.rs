//! The open-loop synthetic-traffic testbench.
//!
//! Mirrors the paper's methodology (§4.1): every tile injects packets by a
//! Bernoulli process at a fixed rate; latency is measured from packet
//! generation (entering the source queue) to ejection, so it diverges as the
//! network saturates; throughput is the accepted flit rate during the
//! measurement window while injection continues.

use crate::error::TrafficError;
use crate::pattern::Pattern;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruche_noc::fault::FaultModel;
use ruche_noc::packet::Flit;
use ruche_noc::prelude::*;
use ruche_stats::Accum;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Testbench phase lengths and injection parameters.
///
/// Build one with [`Testbench::builder`], which validates eagerly — the
/// same discipline as `NetworkConfig::builder`. The fields stay public for
/// struct-update tweaking in sweeps; [`Testbench::validate`] re-checks a
/// hand-edited value, and [`run`] validates again before simulating.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Testbench {
    /// Destination pattern.
    pub pattern: Pattern,
    /// Packets per tile per cycle (Bernoulli probability), in `(0, 1]`.
    pub injection_rate: f64,
    /// Cycles of injection before measurement starts.
    pub warmup: u64,
    /// Cycles of the measurement window (injection continues).
    pub measure: u64,
    /// Maximum extra cycles to wait for measured packets to drain.
    pub drain: u64,
    /// Flits per packet (the paper uses 1 throughout).
    pub packet_len: usize,
    /// RNG seed — runs are fully deterministic.
    pub seed: u64,
    /// Faults injected into the network before the run. Empty (the
    /// default) keeps the simulation on the unfaulted fast path,
    /// bit-for-bit identical to a network built without fault support.
    pub faults: FaultModel,
}

/// The `Debug` rendering doubles as the sweep-engine cache key, so an
/// empty fault model renders exactly as the pre-fault `Testbench` did:
/// unfaulted cache entries stay valid, and only genuinely faulted
/// testbenches get new keys.
impl fmt::Debug for Testbench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Testbench");
        d.field("pattern", &self.pattern)
            .field("injection_rate", &self.injection_rate)
            .field("warmup", &self.warmup)
            .field("measure", &self.measure)
            .field("drain", &self.drain)
            .field("packet_len", &self.packet_len)
            .field("seed", &self.seed);
        if !self.faults.is_empty() {
            d.field("faults", &self.faults);
        }
        d.finish()
    }
}

impl Testbench {
    /// Default warmup/measure/drain cycles (the paper's methodology).
    pub const DEFAULT_WINDOWS: (u64, u64, u64) = (1_000, 2_000, 3_000);
    /// Shortened warmup/measure/drain cycles for smoke tests.
    pub const QUICK_WINDOWS: (u64, u64, u64) = (300, 700, 1_000);
    /// Default RNG seed.
    pub const DEFAULT_SEED: u64 = 0xC0FFEE;

    /// Starts a [`TestbenchBuilder`] with the paper's defaults at the
    /// given rate. [`TestbenchBuilder::build`] validates everything at
    /// once, so a bad parameter fails where it is written.
    pub fn builder(pattern: Pattern, injection_rate: f64) -> TestbenchBuilder {
        TestbenchBuilder {
            tb: Testbench {
                pattern,
                injection_rate,
                warmup: Self::DEFAULT_WINDOWS.0,
                measure: Self::DEFAULT_WINDOWS.1,
                drain: Self::DEFAULT_WINDOWS.2,
                packet_len: 1,
                seed: Self::DEFAULT_SEED,
                faults: FaultModel::default(),
            },
        }
    }

    /// A testbench with the paper's defaults at the given rate.
    #[deprecated(
        since = "0.6.0",
        note = "use `Testbench::builder(pattern, rate)` and `build()`, which validate eagerly"
    )]
    pub fn new(pattern: Pattern, injection_rate: f64) -> Self {
        Self::builder(pattern, injection_rate).tb
    }

    /// Shorter phases for smoke tests and quick sweeps (builder style).
    #[deprecated(since = "0.6.0", note = "use `TestbenchBuilder::quick`")]
    pub fn quick(mut self) -> Self {
        (self.warmup, self.measure, self.drain) = Self::QUICK_WINDOWS;
        self
    }

    /// Overrides the RNG seed (builder style).
    #[deprecated(since = "0.6.0", note = "use `TestbenchBuilder::seed`")]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks every invariant [`TestbenchBuilder::build`] enforces:
    /// `injection_rate` finite and in `(0, 1]`, non-degenerate measure and
    /// drain windows, and at least one flit per packet. [`run`] calls this
    /// before simulating, so a hand-edited testbench cannot slip past the
    /// builder's validation.
    ///
    /// # Errors
    ///
    /// The [`TrafficError`] for the first violated invariant.
    pub fn validate(&self) -> Result<(), TrafficError> {
        if !self.injection_rate.is_finite()
            || self.injection_rate <= 0.0
            || self.injection_rate > 1.0
        {
            return Err(TrafficError::InvalidInjectionRate(self.injection_rate));
        }
        if self.measure == 0 {
            return Err(TrafficError::EmptyMeasureWindow);
        }
        if self.drain == 0 {
            return Err(TrafficError::EmptyDrainWindow);
        }
        if self.packet_len == 0 {
            return Err(TrafficError::EmptyPacket);
        }
        Ok(())
    }
}

/// Validating builder for [`Testbench`] — the one entry point for every
/// parameter, faults included.
///
/// # Examples
///
/// ```
/// use ruche_traffic::{Pattern, Testbench};
///
/// let tb = Testbench::builder(Pattern::UniformRandom, 0.05)
///     .quick()
///     .seed(7)
///     .build()?;
/// assert_eq!(tb.seed, 7);
///
/// // A bad rate fails at build time, not mid-sweep.
/// assert!(Testbench::builder(Pattern::UniformRandom, 1.5).build().is_err());
/// # Ok::<(), ruche_traffic::TrafficError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TestbenchBuilder {
    tb: Testbench,
}

impl TestbenchBuilder {
    /// Sets the warmup window in cycles.
    pub fn warmup(mut self, cycles: u64) -> Self {
        self.tb.warmup = cycles;
        self
    }

    /// Sets the measurement window in cycles.
    pub fn measure(mut self, cycles: u64) -> Self {
        self.tb.measure = cycles;
        self
    }

    /// Sets the drain budget in cycles.
    pub fn drain(mut self, cycles: u64) -> Self {
        self.tb.drain = cycles;
        self
    }

    /// Switches to the shortened smoke-test windows
    /// ([`Testbench::QUICK_WINDOWS`]).
    pub fn quick(mut self) -> Self {
        (self.tb.warmup, self.tb.measure, self.tb.drain) = Testbench::QUICK_WINDOWS;
        self
    }

    /// Sets the packet length in flits.
    pub fn packet_len(mut self, flits: usize) -> Self {
        self.tb.packet_len = flits;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.tb.seed = seed;
        self
    }

    /// Injects a fault model: the run's network is built with
    /// `Network::with_faults`, dead tiles fall silent, and packets are
    /// only offered to destinations the surviving network can reach.
    pub fn faults(mut self, faults: FaultModel) -> Self {
        self.tb.faults = faults;
        self
    }

    /// Validates and returns the testbench.
    ///
    /// # Errors
    ///
    /// The [`TrafficError`] for the first violated invariant, as
    /// [`Testbench::validate`] reports it. (Fault-model fit is checked
    /// against the network configuration at [`run`] time — the builder
    /// does not know the array yet.)
    pub fn build(self) -> Result<Testbench, TrafficError> {
        self.tb.validate()?;
        Ok(self.tb)
    }
}

impl From<Testbench> for TestbenchBuilder {
    /// Reopens an existing testbench for further tweaking.
    fn from(tb: Testbench) -> Self {
        TestbenchBuilder { tb }
    }
}

/// Results of one testbench run.
///
/// `TbResult` is also the service's versioned per-job response payload:
/// see [`TbResult::VERSION`](crate::wire) and the exact JSON round-trip
/// codec in [`crate::wire`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TbResult {
    /// Offered load (packets/tile/cycle).
    pub offered: f64,
    /// Accepted throughput: flits ejected during the measurement window per
    /// tile per cycle.
    pub accepted: f64,
    /// Mean packet latency (generation to ejection) over packets born in
    /// the measurement window and delivered before the drain limit.
    pub avg_latency: f64,
    /// 99th-percentile latency over the same population.
    pub p99_latency: f64,
    /// Measured-window packets delivered.
    pub delivered: u64,
    /// Measured-window packets still undelivered at the drain limit
    /// (non-zero means the network is past saturation).
    pub lost: u64,
    /// Per-source-tile latency accumulators (for the fairness study).
    pub per_tile_latency: Vec<Accum>,
    /// Whether the run shows saturation (accepted < 95% of offered, or
    /// undrained packets remain).
    pub saturated: bool,
}

/// Runs the testbench on a network configuration.
///
/// With a non-empty [`Testbench::faults`], the network is built with
/// `Network::with_faults`: dead tiles inject nothing, and packets are only
/// offered to destinations the surviving network can reach (partitioned
/// pairs fall silent instead of wedging the run). An empty fault model
/// takes the exact unfaulted code path — same RNG stream, same results,
/// bit for bit.
///
/// # Errors
///
/// Returns a [`TrafficError`] if the testbench parameters are invalid
/// ([`Testbench::validate`]), the pattern cannot run on the array, the
/// network configuration is rejected, or the fault model does not fit it.
pub fn run(cfg: &NetworkConfig, tb: &Testbench) -> Result<TbResult, TrafficError> {
    run_inner(cfg, tb, None).map(|(res, _)| res)
}

/// Like [`run`], with [`NetTelemetry`] attached to the network for the
/// whole run (warmup included). `window` is the injection/ejection
/// time-series bin width in cycles. The simulation is identical to
/// [`run`]'s — telemetry observes, it does not perturb.
///
/// # Errors
///
/// Returns a [`TrafficError`] exactly as [`run`] does.
pub fn run_probed(
    cfg: &NetworkConfig,
    tb: &Testbench,
    window: u64,
) -> Result<(TbResult, Box<NetTelemetry>), TrafficError> {
    run_inner(cfg, tb, Some(window)).map(|(res, tel)| (res, tel.expect("telemetry was attached")))
}

fn run_inner(
    cfg: &NetworkConfig,
    tb: &Testbench,
    telemetry_window: Option<u64>,
) -> Result<(TbResult, Option<Box<NetTelemetry>>), TrafficError> {
    tb.validate()?;
    tb.pattern.validate(cfg.dims)?;
    let mut cfg = cfg.clone();
    if tb.pattern.needs_edge_ports() {
        cfg.edge_memory_ports = true;
    }
    let dims = cfg.dims;
    let n_tiles = dims.count() as u64;
    let mut net = if tb.faults.is_empty() {
        Network::new(cfg)?
    } else {
        Network::with_faults(cfg, &tb.faults).map_err(|e| match e {
            ruche_noc::Error::Config(e) => TrafficError::Config(e),
            ruche_noc::Error::Fault(e) => TrafficError::Fault(e),
            other => panic!("unexpected faulted-network construction error: {other}"),
        })?
    };
    // Cloned out of the network so reachability checks below don't hold a
    // borrow across `enqueue`. `None` on the unfaulted fast path.
    let fault_table = net.route_table().cloned();
    if let Some(window) = telemetry_window {
        net.attach_telemetry(window);
    }
    let mut rng = SmallRng::seed_from_u64(tb.seed);

    let inject_until = tb.warmup + tb.measure;
    let m_start = tb.warmup;

    // Event-driven stepping fast-forwards the clock across provably-empty
    // spans, which requires knowing the next injection cycle up front. The
    // whole injection schedule is drawn ahead of time — no Bernoulli or
    // destination draw depends on simulation state, so consuming the very
    // same RNG stream in the very same (cycle, tile) order yields exactly
    // the traffic the per-cycle loop below generates: same packet ids, same
    // birth cycles, same destinations, bit for bit. The cycle-accurate path
    // keeps the original interleaved loop untouched.
    let event_on = net.step_mode() != StepMode::CycleAccurate;
    let mut schedule: VecDeque<(u64, Coord, Dest)> = VecDeque::new();
    if event_on {
        for cycle in 0..inject_until {
            for src in dims.iter() {
                if fault_table.is_some() && !net.endpoint_alive(net.tile_endpoint(src)) {
                    continue;
                }
                if rng.gen_bool(tb.injection_rate) {
                    if let Some(dest) = tb.pattern.dest(src, dims, &mut rng) {
                        if let Some(table) = &fault_table {
                            if !table.reachable(src, Dir::P, dest) {
                                continue;
                            }
                        }
                        schedule.push_back((cycle, src, dest));
                    }
                }
            }
        }
    }
    let mut next_id = 0u64;
    let mut expected = 0u64; // packets born in the measurement window
    let mut delivered = 0u64;
    let mut measured_flits_ejected = 0u64;
    let mut lat = ruche_stats::Samples::new();
    let mut per_tile: Vec<Accum> = vec![Accum::new(); n_tiles as usize];

    let mut cycle = 0u64;
    let deadline = inject_until + tb.drain;
    while cycle < deadline {
        if cycle < inject_until {
            if event_on {
                // Replay the precomputed schedule for this cycle.
                while schedule.front().is_some_and(|&(c, ..)| c == cycle) {
                    let (_, src, dest) = schedule.pop_front().expect("checked front");
                    let ep = net.tile_endpoint(src);
                    if cycle >= m_start {
                        expected += 1;
                    }
                    for f in Flit::multi(src, dest, next_id, cycle, tb.packet_len) {
                        net.enqueue(ep, f);
                    }
                    next_id += 1;
                }
            } else {
                for src in dims.iter() {
                    // Dead tiles fall silent without consuming an RNG draw,
                    // so a fault model perturbs only the traffic it
                    // disables.
                    if fault_table.is_some() && !net.endpoint_alive(net.tile_endpoint(src)) {
                        continue;
                    }
                    if rng.gen_bool(tb.injection_rate) {
                        if let Some(dest) = tb.pattern.dest(src, dims, &mut rng) {
                            if let Some(table) = &fault_table {
                                if !table.reachable(src, Dir::P, dest) {
                                    continue; // partitioned pair: offer nothing
                                }
                            }
                            let ep = net.tile_endpoint(src);
                            let in_window = cycle >= m_start;
                            if in_window {
                                expected += 1;
                            }
                            for f in Flit::multi(src, dest, next_id, cycle, tb.packet_len) {
                                net.enqueue(ep, f);
                            }
                            next_id += 1;
                        }
                    }
                }
            }
        }
        let in_measure = (m_start..inject_until).contains(&cycle);
        for &(_, f) in net.step() {
            if in_measure {
                measured_flits_ejected += 1;
            }
            if f.kind.is_tail() && f.birth >= m_start && f.birth < inject_until {
                let latency = (cycle - f.birth) as f64;
                lat.add(latency);
                per_tile[dims.index(f.src)].add(latency);
                delivered += 1;
            }
        }
        cycle += 1;
        // Early exit once everything measured has drained.
        if cycle >= inject_until && delivered == expected {
            break;
        }
        // Fast-forward across the span in which neither the network (no
        // flit buffered or in transit) nor the schedule (next injection
        // still ahead) can do anything. Skipped cycles eject nothing — the
        // span is provably empty — so the accounting above misses nothing,
        // and telemetry records the span in bulk, byte-identical to
        // stepping it.
        if event_on {
            let next_inject = schedule.front().map_or(deadline, |&(c, ..)| c);
            cycle = net.fast_forward(next_inject.min(deadline));
        }
    }

    let accepted = measured_flits_ejected as f64 / (n_tiles * tb.measure) as f64;
    let offered = tb.injection_rate * tb.packet_len as f64;
    let lost = expected - delivered;
    let mut samples = lat;
    Ok((
        TbResult {
            offered,
            accepted,
            avg_latency: samples.mean(),
            p99_latency: samples.quantile(0.99).unwrap_or(0.0),
            delivered,
            lost,
            per_tile_latency: per_tile,
            // The absolute slack keeps Bernoulli sampling noise at very low
            // rates from reading as saturation.
            saturated: lost > 0 || accepted < 0.95 * offered - 0.005,
        },
        net.detach_telemetry(),
    ))
}

/// Mean latency at (near-)zero load: a low-rate run whose latency is the
/// network's intrinsic latency under this pattern.
pub fn zero_load_latency(cfg: &NetworkConfig, pattern: Pattern, seed: u64) -> f64 {
    let tb = Testbench::builder(pattern, 0.005)
        .seed(seed)
        .build()
        .expect("zero-load testbench is valid");
    run(cfg, &tb).expect("pattern valid").avg_latency
}

/// Saturation throughput: the accepted flit rate when every tile offers a
/// packet every cycle.
pub fn saturation_throughput(cfg: &NetworkConfig, pattern: Pattern, seed: u64) -> f64 {
    let tb = Testbench::builder(pattern, 1.0)
        .seed(seed)
        .build()
        .expect("saturation testbench is valid");
    run(cfg, &tb).expect("pattern valid").accepted
}

/// One point of a latency-vs-offered-load curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Offered load (flits/tile/cycle).
    pub offered: f64,
    /// Accepted throughput.
    pub accepted: f64,
    /// Mean latency (diverges past saturation).
    pub avg_latency: f64,
    /// Whether this point is past saturation.
    pub saturated: bool,
}

/// Sweeps injection rates, producing the latency/throughput curve of the
/// paper's Figures 6 and 9.
pub fn latency_curve(cfg: &NetworkConfig, tb_proto: &Testbench, rates: &[f64]) -> Vec<CurvePoint> {
    rates
        .iter()
        .map(|&r| {
            let tb = Testbench {
                injection_rate: r,
                ..tb_proto.clone()
            };
            let res = run(cfg, &tb).expect("pattern valid");
            CurvePoint {
                offered: res.offered,
                accepted: res.accepted,
                avg_latency: res.avg_latency,
                saturated: res.saturated,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruche_noc::topology::CrossbarScheme::FullyPopulated;

    fn quick(pattern: Pattern, rate: f64) -> Testbench {
        Testbench::builder(pattern, rate)
            .quick()
            .build()
            .expect("test parameters are valid")
    }

    #[test]
    fn low_load_latency_matches_route_hops() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 8));
        let tb = quick(Pattern::UniformRandom, 0.01);
        let res = run(&cfg, &tb).unwrap();
        assert!(!res.saturated);
        assert_eq!(res.lost, 0);
        // Latency ≈ mean route hops, within queueing noise at 1% load: a
        // flit born at cycle t traverses its first link during cycle t's
        // step, so the source queue adds no cycle at zero load.
        let expect = mean_route_hops(&cfg);
        assert!(
            (res.avg_latency - expect).abs() < 1.0,
            "avg {} vs hops {}",
            res.avg_latency,
            expect
        );
    }

    #[test]
    fn drain_exits_early_once_measured_packets_land() {
        // The drain budget is an upper bound, not a schedule: once every
        // measured packet has ejected, the run stops. An absurd budget must
        // therefore cost nothing and change nothing. (If the early exit
        // regressed, this test would grind through 50M idle cycles.)
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        let tb = Testbench::builder(Pattern::UniformRandom, 0.05)
            .warmup(100)
            .measure(200)
            .drain(1_000)
            .build()
            .unwrap();
        let huge = Testbench {
            drain: 50_000_000,
            ..tb.clone()
        };
        let start = std::time::Instant::now();
        let a = run(&cfg, &tb).unwrap();
        let b = run(&cfg, &huge).unwrap();
        assert!(start.elapsed().as_secs() < 20, "drain did not exit early");
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.lost, 0);
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn mesh_8x8_saturates_near_paper_value() {
        // §4.1: 2-D mesh saturation throughput around 28% under uniform
        // random on 8×8. Allow a generous band.
        let cfg = NetworkConfig::mesh(Dims::new(8, 8));
        let sat = saturation_throughput(&cfg, Pattern::UniformRandom, 3);
        assert!((0.22..0.36).contains(&sat), "saturation {sat}");
    }

    #[test]
    fn ruche_one_beats_torus_in_uniform_random() {
        // §4.1 headline: ruche1-pop outperforms torus in throughput despite
        // equal bisection bandwidth, because VC routers halve the peak
        // crossbar bandwidth.
        let dims = Dims::new(8, 8);
        let torus = saturation_throughput(&NetworkConfig::torus(dims), Pattern::UniformRandom, 3);
        let r1 = saturation_throughput(&NetworkConfig::ruche_one(dims), Pattern::UniformRandom, 3);
        assert!(r1 > torus, "ruche1 {r1} vs torus {torus}");
    }

    #[test]
    fn torus_beats_mesh_in_uniform_random() {
        let dims = Dims::new(8, 8);
        let mesh = saturation_throughput(&NetworkConfig::mesh(dims), Pattern::UniformRandom, 3);
        let torus = saturation_throughput(&NetworkConfig::torus(dims), Pattern::UniformRandom, 3);
        assert!(torus > mesh, "torus {torus} vs mesh {mesh}");
    }

    #[test]
    fn saturated_run_reports_saturation() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 8));
        let res = run(&cfg, &quick(Pattern::UniformRandom, 0.9)).unwrap();
        assert!(res.saturated);
        assert!(res.accepted < 0.5);
    }

    #[test]
    fn latency_curve_is_monotone_in_accepted_load() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 8));
        // The proto's own rate is never run — each curve point replaces it.
        let tb = quick(Pattern::UniformRandom, 1.0);
        let curve = latency_curve(&cfg, &tb, &[0.02, 0.10, 0.25]);
        assert_eq!(curve.len(), 3);
        assert!(curve[0].avg_latency < curve[2].avg_latency);
        assert!(curve[0].accepted < curve[1].accepted);
    }

    #[test]
    fn tile_to_memory_runs_on_edge_network() {
        let cfg =
            NetworkConfig::half_ruche(Dims::new(16, 8), 2, FullyPopulated).with_edge_memory_ports();
        let res = run(&cfg, &quick(Pattern::TileToMemory, 0.05)).unwrap();
        assert!(res.delivered > 0);
        assert!(!res.saturated);
    }

    #[test]
    fn per_tile_latencies_cover_all_tiles() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        let res = run(&cfg, &quick(Pattern::UniformRandom, 0.1)).unwrap();
        assert_eq!(res.per_tile_latency.len(), 16);
        assert!(res.per_tile_latency.iter().all(|a| a.count() > 0));
    }

    #[test]
    fn transpose_on_rectangular_array_errors() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 4));
        assert!(run(&cfg, &quick(Pattern::Transpose, 0.1)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 8));
        let a = run(&cfg, &quick(Pattern::UniformRandom, 0.2)).unwrap();
        let b = run(&cfg, &quick(Pattern::UniformRandom, 0.2)).unwrap();
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn probed_run_matches_plain_run() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 8));
        let tb = quick(Pattern::UniformRandom, 0.2);
        let plain = run(&cfg, &tb).unwrap();
        let (probed, tel) = run_probed(&cfg, &tb, 64).unwrap();
        assert_eq!(plain.avg_latency, probed.avg_latency);
        assert_eq!(plain.accepted, probed.accepted);
        assert_eq!(plain.delivered, probed.delivered);
        // The telemetry observed the whole run, including the drain tail.
        assert!(tel.cycles() >= tb.warmup + tb.measure);
        assert!(tel.ejected().total() >= probed.delivered);
        assert!(tel.injected().total() >= tel.ejected().total());
    }

    #[test]
    fn two_identical_seeded_runs_export_identical_telemetry() {
        let blob = |seed: u64| {
            let cfg = NetworkConfig::mesh(Dims::new(8, 8));
            let tb = Testbench::builder(Pattern::UniformRandom, 0.2)
                .quick()
                .seed(seed)
                .build()
                .unwrap();
            let (_, tel) = run_probed(&cfg, &tb, 64).unwrap();
            let mut p = ruche_telemetry::JsonProbe::new();
            tel.export(&mut p);
            p.into_json()
        };
        let a = blob(11);
        assert_eq!(a, blob(11), "same seed, same bytes");
        assert!(a.contains("\"link.E.vc0.traversed\""), "{a}");
        assert_ne!(a, blob(12), "different seed, different telemetry");
    }

    #[test]
    fn faulted_run_skips_partitioned_pairs_and_delivers_the_rest() {
        let cfg = NetworkConfig::mesh(Dims::new(6, 6));
        let faults = FaultModel::random_links(&cfg, 0.1, 4).kill_router(Coord::new(3, 3));
        let tb = Testbench::builder(Pattern::UniformRandom, 0.1)
            .quick()
            .faults(faults)
            .build()
            .unwrap();
        let res = run(&cfg, &tb).unwrap();
        assert!(res.delivered > 0);
        assert_eq!(res.lost, 0, "unreachable pairs are never offered");
        // The dead tile sourced nothing.
        assert_eq!(
            res.per_tile_latency[Dims::new(6, 6).index(Coord::new(3, 3))].count(),
            0
        );
    }

    #[test]
    fn misfit_fault_model_errors_instead_of_panicking() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        let tb = Testbench::builder(Pattern::UniformRandom, 0.1)
            .quick()
            .faults(FaultModel::default().kill_router(Coord::new(9, 9)))
            .build()
            .unwrap();
        assert!(matches!(run(&cfg, &tb), Err(crate::TrafficError::Fault(_))));
    }

    #[test]
    fn debug_rendering_is_stable_for_unfaulted_testbenches() {
        // The sweep cache keys on `{:?}`: an empty fault model must render
        // exactly as the pre-fault Testbench did, and only real faults may
        // change the key.
        let tb = quick(Pattern::UniformRandom, 0.1);
        assert_eq!(
            format!("{tb:?}"),
            "Testbench { pattern: UniformRandom, injection_rate: 0.1, warmup: 300, \
             measure: 700, drain: 1000, packet_len: 1, seed: 12648430 }"
        );
        let faulted = TestbenchBuilder::from(tb.clone())
            .faults(FaultModel::default().kill_router(Coord::new(1, 1)))
            .build()
            .unwrap();
        assert_ne!(format!("{tb:?}"), format!("{faulted:?}"));
        assert!(format!("{faulted:?}").contains("faults"), "{faulted:?}");
    }

    #[test]
    fn multi_flit_packets_account_latency_at_tail() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 8));
        let mut tb = quick(Pattern::UniformRandom, 0.02);
        tb.packet_len = 3;
        let res = run(&cfg, &tb).unwrap();
        let single = run(&cfg, &quick(Pattern::UniformRandom, 0.02)).unwrap();
        assert!(
            res.avg_latency > single.avg_latency,
            "serialization latency"
        );
    }
}
