//! # ruche-traffic
//!
//! Synthetic traffic generation and the open-loop testbench used to
//! reproduce the paper's Figure 6 (Full Ruche synthetic traffic), Figure 8
//! (fairness), and Figure 9 (Half Ruche synthetic traffic).
//!
//! ```
//! use ruche_noc::prelude::*;
//! use ruche_traffic::{run, Pattern, Testbench};
//!
//! let cfg = NetworkConfig::mesh(Dims::new(8, 8));
//! let tb = Testbench::builder(Pattern::UniformRandom, 0.05).quick().build()?;
//! let res = run(&cfg, &tb)?;
//! assert!(!res.saturated);
//! # Ok::<(), ruche_traffic::TrafficError>(())
//! ```
//!
//! Fault injection rides the same builder: pass a
//! [`FaultModel`](ruche_noc::fault::FaultModel) to
//! [`TestbenchBuilder::faults`](testbench::TestbenchBuilder::faults) and
//! the run degrades gracefully — dead tiles fall silent and partitioned
//! pairs are never offered load.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod pattern;
pub mod testbench;
pub mod wire;

pub use error::TrafficError;
pub use pattern::{Pattern, PatternError};
pub use testbench::{
    latency_curve, run, run_probed, saturation_throughput, zero_load_latency, CurvePoint, TbResult,
    Testbench, TestbenchBuilder,
};
pub use wire::SweepRequest;
