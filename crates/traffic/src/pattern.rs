//! Synthetic traffic patterns (§4.1, §4.5).

use rand::Rng;
use ruche_noc::geometry::{Coord, Dims};
use ruche_noc::routing::Dest;
use serde::{Deserialize, Serialize};

/// A synthetic destination-selection pattern.
///
/// Patterns map a source tile to a destination; permutation patterns are
/// deterministic, random patterns draw from the given RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Uniformly random destination tile (≠ source). The paper's
    /// *uniform random* and manycore *tile-to-tile* patterns.
    UniformRandom,
    /// `(x, y) → (X-1-x, Y-1-y)` — worst-case for DOR bisections.
    BitComplement,
    /// `(x, y) → (y, x)` — requires a square array.
    Transpose,
    /// `(x, y) → ((x + ⌈X/2⌉ - 1) mod X, (y + ⌈Y/2⌉ - 1) mod Y)` —
    /// adversarial for rings and meshes.
    Tornado,
    /// All traffic to a single tile.
    Hotspot(Coord),
    /// Uniformly random north/south edge memory endpoint — the paper's
    /// all-to-edge *tile-to-memory* pattern (§4.5). Requires a network
    /// built with edge memory ports.
    TileToMemory,
    /// Uniformly random physically adjacent tile — the communication
    /// signature that exposes the folded-torus neighbor pathology.
    Neighbor,
}

/// Errors from [`Pattern::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// Transpose needs `cols == rows`.
    NeedsSquareArray,
    /// The hotspot target lies outside the array.
    HotspotOutOfBounds(Coord),
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::NeedsSquareArray => write!(f, "transpose requires a square array"),
            PatternError::HotspotOutOfBounds(c) => write!(f, "hotspot target {c} out of bounds"),
        }
    }
}

impl std::error::Error for PatternError {}

impl Pattern {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::UniformRandom => "uniform-random",
            Pattern::BitComplement => "bit-complement",
            Pattern::Transpose => "transpose",
            Pattern::Tornado => "tornado",
            Pattern::Hotspot(_) => "hotspot",
            Pattern::TileToMemory => "tile-to-memory",
            Pattern::Neighbor => "neighbor",
        }
    }

    /// Whether this pattern targets edge memory endpoints.
    pub fn needs_edge_ports(&self) -> bool {
        matches!(self, Pattern::TileToMemory)
    }

    /// Checks applicability to the given array.
    ///
    /// # Errors
    ///
    /// Returns a [`PatternError`] if the pattern cannot run on `dims`.
    pub fn validate(&self, dims: Dims) -> Result<(), PatternError> {
        match self {
            Pattern::Transpose if dims.cols != dims.rows => Err(PatternError::NeedsSquareArray),
            Pattern::Hotspot(c) if !dims.contains(*c) => Err(PatternError::HotspotOutOfBounds(*c)),
            _ => Ok(()),
        }
    }

    /// Picks a destination for a packet from `src`, or `None` if the
    /// pattern maps `src` to itself (such sources stay silent).
    pub fn dest<R: Rng + ?Sized>(&self, src: Coord, dims: Dims, rng: &mut R) -> Option<Dest> {
        match self {
            Pattern::UniformRandom => {
                if dims.count() < 2 {
                    return None;
                }
                loop {
                    let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
                    if d != src {
                        return Some(Dest::tile(d));
                    }
                }
            }
            Pattern::BitComplement => {
                let d = Coord::new(dims.cols - 1 - src.x, dims.rows - 1 - src.y);
                (d != src).then_some(Dest::tile(d))
            }
            Pattern::Transpose => {
                let d = Coord::new(src.y, src.x);
                (d != src).then_some(Dest::tile(d))
            }
            Pattern::Tornado => {
                let dx = (src.x + dims.cols.div_ceil(2) - 1) % dims.cols;
                let dy = (src.y + dims.rows.div_ceil(2) - 1) % dims.rows;
                let d = Coord::new(dx, dy);
                (d != src).then_some(Dest::tile(d))
            }
            Pattern::Hotspot(target) => (*target != src).then_some(Dest::tile(*target)),
            Pattern::TileToMemory => {
                let col = rng.gen_range(0..dims.cols);
                Some(if rng.gen_bool(0.5) {
                    Dest::north_edge(col)
                } else {
                    Dest::south_edge(col, dims.rows)
                })
            }
            Pattern::Neighbor => {
                let candidates: Vec<Coord> = [(1, 0), (-1, 0), (0, 1), (0, -1)]
                    .iter()
                    .filter_map(|&(dx, dy)| src.offset(dx, dy, dims))
                    .collect();
                candidates
                    .get(rng.gen_range(0..candidates.len()))
                    .copied()
                    .map(Dest::tile)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn uniform_random_never_self() {
        let dims = Dims::new(4, 4);
        let mut r = rng();
        for _ in 0..200 {
            let src = Coord::new(2, 2);
            let d = Pattern::UniformRandom.dest(src, dims, &mut r).unwrap();
            assert_ne!(d.coord, src);
            assert!(d.edge.is_none());
        }
    }

    #[test]
    fn bit_complement_mapping() {
        let dims = Dims::new(8, 8);
        let d = Pattern::BitComplement
            .dest(Coord::new(1, 2), dims, &mut rng())
            .unwrap();
        assert_eq!(d.coord, Coord::new(6, 5));
        // Centre of an odd array maps to itself -> silent.
        let dims = Dims::new(5, 5);
        assert!(Pattern::BitComplement
            .dest(Coord::new(2, 2), dims, &mut rng())
            .is_none());
    }

    #[test]
    fn transpose_mapping_and_validation() {
        let dims = Dims::new(8, 8);
        let d = Pattern::Transpose
            .dest(Coord::new(3, 5), dims, &mut rng())
            .unwrap();
        assert_eq!(d.coord, Coord::new(5, 3));
        assert!(Pattern::Transpose
            .dest(Coord::new(4, 4), dims, &mut rng())
            .is_none());
        assert_eq!(
            Pattern::Transpose.validate(Dims::new(8, 4)),
            Err(PatternError::NeedsSquareArray)
        );
        assert!(Pattern::Transpose.validate(dims).is_ok());
    }

    #[test]
    fn tornado_mapping() {
        let dims = Dims::new(8, 8);
        let d = Pattern::Tornado
            .dest(Coord::new(0, 0), dims, &mut rng())
            .unwrap();
        assert_eq!(d.coord, Coord::new(3, 3));
        let d = Pattern::Tornado
            .dest(Coord::new(6, 6), dims, &mut rng())
            .unwrap();
        assert_eq!(d.coord, Coord::new(1, 1));
    }

    #[test]
    fn hotspot_validation() {
        assert!(matches!(
            Pattern::Hotspot(Coord::new(9, 0)).validate(Dims::new(4, 4)),
            Err(PatternError::HotspotOutOfBounds(_))
        ));
        let d = Pattern::Hotspot(Coord::new(1, 1))
            .dest(Coord::new(0, 0), Dims::new(4, 4), &mut rng())
            .unwrap();
        assert_eq!(d.coord, Coord::new(1, 1));
    }

    #[test]
    fn tile_to_memory_targets_edges() {
        let dims = Dims::new(16, 8);
        let mut r = rng();
        let mut north = 0;
        let mut south = 0;
        for _ in 0..200 {
            let d = Pattern::TileToMemory
                .dest(Coord::new(5, 4), dims, &mut r)
                .unwrap();
            match d.edge {
                Some(ruche_noc::routing::EdgePort::North) => {
                    north += 1;
                    assert_eq!(d.coord.y, 0);
                }
                Some(ruche_noc::routing::EdgePort::South) => {
                    south += 1;
                    assert_eq!(d.coord.y, 7);
                }
                None => panic!("tile destination from TileToMemory"),
            }
        }
        assert!(north > 50 && south > 50, "both edges used: {north}/{south}");
        assert!(Pattern::TileToMemory.needs_edge_ports());
    }

    #[test]
    fn neighbor_is_adjacent() {
        let dims = Dims::new(4, 4);
        let mut r = rng();
        for _ in 0..100 {
            let src = Coord::new(0, 0);
            let d = Pattern::Neighbor.dest(src, dims, &mut r).unwrap();
            assert_eq!(src.manhattan(d.coord), 1);
        }
    }
}
