//! Property-based tests of the traffic patterns: destinations stay in
//! bounds, permutation patterns are involutions/bijections, and the
//! testbench conserves packets at any load.

// Full testbench property sweeps are too slow at interpreter speed; Miri
// runs the concurrency subset (noc pool/shard), not these suites.
#![cfg(not(miri))]

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ruche_noc::prelude::*;
use ruche_traffic::{run, Pattern, Testbench};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every pattern produces in-bounds destinations (tile destinations
    /// inside the array; edge destinations on the edge rows).
    #[test]
    fn destinations_in_bounds(
        cols in 2u16..=20,
        rows in 2u16..=20,
        sx in 0u16..20,
        sy in 0u16..20,
        seed in any::<u64>(),
    ) {
        let dims = Dims::new(cols, rows);
        let src = Coord::new(sx % cols, sy % rows);
        let mut rng = SmallRng::seed_from_u64(seed);
        for pattern in [
            Pattern::UniformRandom,
            Pattern::BitComplement,
            Pattern::Tornado,
            Pattern::TileToMemory,
            Pattern::Neighbor,
            Pattern::Hotspot(Coord::new(0, 0)),
        ] {
            if let Some(d) = pattern.dest(src, dims, &mut rng) {
                prop_assert!(dims.contains(d.coord), "{pattern:?} -> {d}");
                match d.edge {
                    Some(ruche_noc::routing::EdgePort::North) => prop_assert_eq!(d.coord.y, 0),
                    Some(ruche_noc::routing::EdgePort::South) => {
                        prop_assert_eq!(d.coord.y, rows - 1)
                    }
                    None => {}
                }
            }
        }
    }

    /// Bit complement is an involution; transpose (square arrays) is too;
    /// tornado is a bijection.
    #[test]
    fn permutation_patterns_are_well_formed(k in 2u16..=16, seed in any::<u64>()) {
        let dims = Dims::new(k, k);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut tornado_dests = std::collections::HashSet::new();
        for src in dims.iter() {
            if let Some(d) = Pattern::BitComplement.dest(src, dims, &mut rng) {
                let back = Pattern::BitComplement.dest(d.coord, dims, &mut rng).unwrap();
                prop_assert_eq!(back.coord, src, "bit complement is an involution");
            }
            if let Some(d) = Pattern::Transpose.dest(src, dims, &mut rng) {
                let back = Pattern::Transpose.dest(d.coord, dims, &mut rng).unwrap();
                prop_assert_eq!(back.coord, src, "transpose is an involution");
            }
            if let Some(d) = Pattern::Tornado.dest(src, dims, &mut rng) {
                prop_assert!(tornado_dests.insert(d.coord), "tornado is injective");
            }
        }
    }

    /// The testbench conserves packets at any rate: delivered + lost
    /// equals the measured-window population, and accepted throughput
    /// never exceeds offered by more than the drained backlog allows.
    #[test]
    fn testbench_accounting(rate in 1u32..=100, seed in any::<u64>()) {
        let cfg = NetworkConfig::mesh(Dims::new(6, 6));
        let tb = Testbench::builder(Pattern::UniformRandom, rate as f64 / 100.0)
            .quick()
            .seed(seed)
            .build()
            .unwrap();
        let res = run(&cfg, &tb).unwrap();
        prop_assert!(res.delivered + res.lost > 0 || rate < 2);
        prop_assert!(res.accepted <= 1.0 + 1e-9);
        if rate <= 10 {
            prop_assert_eq!(res.lost, 0, "low load always drains");
            prop_assert!(!res.saturated);
        }
    }
}
