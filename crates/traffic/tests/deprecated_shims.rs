//! The deprecated `Testbench` constructors are kept for one release as
//! thin shims over [`Testbench::builder`]. This test is the only place
//! allowed to call them: it pins down that each shim agrees with its
//! builder replacement until the shims are removed.

#![allow(deprecated)]

use ruche_noc::prelude::*;
use ruche_traffic::{run, Pattern, Testbench, TestbenchBuilder, TrafficError};

#[test]
fn new_matches_builder_defaults() {
    let old = Testbench::new(Pattern::Tornado, 0.25);
    let new = Testbench::builder(Pattern::Tornado, 0.25).build().unwrap();
    assert_eq!(old, new);
    assert_eq!(old.warmup, Testbench::DEFAULT_WINDOWS.0);
    assert_eq!(old.measure, Testbench::DEFAULT_WINDOWS.1);
    assert_eq!(old.drain, Testbench::DEFAULT_WINDOWS.2);
    assert_eq!(old.packet_len, 1);
    assert_eq!(old.seed, Testbench::DEFAULT_SEED);
    assert!(old.faults.is_empty());
}

#[test]
fn quick_and_with_seed_match_builder_methods() {
    let old = Testbench::new(Pattern::UniformRandom, 0.1)
        .quick()
        .with_seed(7);
    let new = Testbench::builder(Pattern::UniformRandom, 0.1)
        .quick()
        .seed(7)
        .build()
        .unwrap();
    assert_eq!(old, new);
    assert_eq!(
        (old.warmup, old.measure, old.drain),
        Testbench::QUICK_WINDOWS
    );
}

#[test]
fn shim_and_builder_testbenches_simulate_identically() {
    let cfg = NetworkConfig::mesh(Dims::new(6, 6));
    let old = Testbench::new(Pattern::UniformRandom, 0.1).quick();
    let new = Testbench::builder(Pattern::UniformRandom, 0.1)
        .quick()
        .build()
        .unwrap();
    let a = run(&cfg, &old).unwrap();
    let b = run(&cfg, &new).unwrap();
    assert_eq!(a.avg_latency, b.avg_latency);
    assert_eq!(a.accepted, b.accepted);
    assert_eq!(a.delivered, b.delivered);
}

#[test]
fn builder_validates_what_the_shims_let_through() {
    // The shims stay infallible (their historical contract); the builder
    // is where bad parameters are caught.
    for rate in [0.0, -0.1, 1.5, f64::NAN] {
        assert!(
            matches!(
                Testbench::builder(Pattern::UniformRandom, rate).build(),
                Err(TrafficError::InvalidInjectionRate(_))
            ),
            "rate {rate} must be rejected"
        );
    }
    assert!(matches!(
        Testbench::builder(Pattern::UniformRandom, 0.1)
            .measure(0)
            .build(),
        Err(TrafficError::EmptyMeasureWindow)
    ));
    assert!(matches!(
        Testbench::builder(Pattern::UniformRandom, 0.1)
            .drain(0)
            .build(),
        Err(TrafficError::EmptyDrainWindow)
    ));
    assert!(matches!(
        Testbench::builder(Pattern::UniformRandom, 0.1)
            .packet_len(0)
            .build(),
        Err(TrafficError::EmptyPacket)
    ));
    // `run` re-validates, so a hand-edited testbench cannot slip through.
    let mut tb = Testbench::new(Pattern::UniformRandom, 0.1).quick();
    tb.injection_rate = 0.0;
    assert!(matches!(
        run(&NetworkConfig::mesh(Dims::new(4, 4)), &tb),
        Err(TrafficError::InvalidInjectionRate(_))
    ));
}

#[test]
fn builder_reopens_an_existing_testbench() {
    let base = Testbench::builder(Pattern::UniformRandom, 0.1)
        .quick()
        .build()
        .unwrap();
    let tweaked = TestbenchBuilder::from(base.clone())
        .seed(99)
        .build()
        .unwrap();
    assert_eq!(tweaked.warmup, base.warmup);
    assert_eq!(tweaked.seed, 99);
}
