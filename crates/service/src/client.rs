//! A small blocking client for the sweep service protocol — what
//! `ruche-sim submit` and the end-to-end tests drive.

use crate::proto::{self, done_count};
use crate::sock::{AnyStream, Bind};
use ruche_telemetry::json::parse;
use std::io::{self, BufRead, BufReader, Write};

/// One connection to a running service daemon.
pub struct Client {
    writer: AnyStream,
    reader: BufReader<AnyStream>,
}

impl Client {
    /// Connects to a daemon at `bind`.
    ///
    /// # Errors
    ///
    /// Any I/O error from connecting.
    pub fn connect(bind: &Bind) -> io::Result<Self> {
        let writer = AnyStream::connect(bind)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Any I/O error from the write.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one response line (without its newline).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] if the daemon closed the
    /// connection, or any other read error.
    pub fn recv(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Submits a batch line and collects every response line through the
    /// `{"done":N}` terminator (included). A top-level `{"error":...}`
    /// response — the answer to a request the daemon could not parse —
    /// ends collection too.
    ///
    /// # Errors
    ///
    /// Any I/O error from the exchange.
    pub fn submit(&mut self, batch_line: &str) -> io::Result<Vec<String>> {
        self.send(batch_line)?;
        let mut lines = Vec::new();
        loop {
            let line = self.recv()?;
            let finished = done_count(&line).is_some() || is_request_error(&line);
            lines.push(line);
            if finished {
                return Ok(lines);
            }
        }
    }

    /// Pings the daemon; true iff it answered `{"ok":true}`.
    ///
    /// # Errors
    ///
    /// Any I/O error from the exchange.
    pub fn ping(&mut self) -> io::Result<bool> {
        self.send(r#"{"cmd":"ping"}"#)?;
        Ok(self.recv()? == proto::render_pong())
    }

    /// Fetches the daemon's metrics line (`{"metrics":{...}}`).
    ///
    /// # Errors
    ///
    /// Any I/O error from the exchange.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.send(r#"{"cmd":"metrics"}"#)?;
        self.recv()
    }

    /// Asks the daemon to shut down; returns once it acknowledges.
    ///
    /// # Errors
    ///
    /// Any I/O error from the exchange.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send(r#"{"cmd":"shutdown"}"#)?;
        let ack = self.recv()?;
        if ack == proto::render_bye() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected shutdown ack: {ack}"),
            ))
        }
    }
}

/// Is `line` a top-level request error (as opposed to a per-job error,
/// which carries a `"job"` index)?
fn is_request_error(line: &str) -> bool {
    parse(line).is_ok_and(|v| v.get("error").is_some() && v.get("job").is_none())
}
