//! Transport plumbing: one listener/stream pair spanning TCP and Unix
//! domain sockets, so the daemon, the client, and every test speak the
//! same protocol over either.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a daemon listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bind {
    /// A TCP address, e.g. `127.0.0.1:7814` (or `:0` for an ephemeral
    /// port — read the bound address back from `Server::addr`).
    Tcp(String),
    /// A Unix domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Bind {
    /// A TCP bind target.
    pub fn tcp(addr: impl Into<String>) -> Self {
        Bind::Tcp(addr.into())
    }

    /// A Unix-socket bind target.
    #[cfg(unix)]
    pub fn unix(path: impl Into<PathBuf>) -> Self {
        Bind::Unix(path.into())
    }
}

/// A listener over either transport.
pub(crate) enum AnyListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl AnyListener {
    pub(crate) fn bind(bind: &Bind) -> io::Result<Self> {
        match bind {
            Bind::Tcp(addr) => Ok(AnyListener::Tcp(TcpListener::bind(addr)?)),
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A stale socket file from a dead daemon would make bind
                // fail forever; remove it (connect-refused distinguishes
                // stale from live only with a probe, which a single-user
                // results directory does not warrant).
                let _ = std::fs::remove_file(path);
                Ok(AnyListener::Unix(UnixListener::bind(path)?, path.clone()))
            }
        }
    }

    pub(crate) fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            AnyListener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            AnyListener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    /// The rendered local address: `host:port` for TCP (with any
    /// ephemeral port resolved), the path for Unix.
    pub(crate) fn addr(&self) -> String {
        match self {
            AnyListener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unbound>".into()),
            #[cfg(unix)]
            AnyListener::Unix(_, path) => path.display().to_string(),
        }
    }

    pub(crate) fn accept(&self) -> io::Result<AnyStream> {
        match self {
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| AnyStream::Tcp(s)),
            #[cfg(unix)]
            AnyListener::Unix(l, _) => l.accept().map(|(s, _)| AnyStream::Unix(s)),
        }
    }

    /// Removes the socket file of a Unix listener (no-op for TCP).
    pub(crate) fn cleanup(&self) {
        #[cfg(unix)]
        if let AnyListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected stream over either transport.
pub(crate) enum AnyStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl AnyStream {
    pub(crate) fn connect(bind: &Bind) -> io::Result<Self> {
        match bind {
            Bind::Tcp(addr) => Ok(AnyStream::Tcp(TcpStream::connect(addr)?)),
            #[cfg(unix)]
            Bind::Unix(path) => Ok(AnyStream::Unix(UnixStream::connect(path)?)),
        }
    }

    pub(crate) fn try_clone(&self) -> io::Result<Self> {
        match self {
            AnyStream::Tcp(s) => s.try_clone().map(AnyStream::Tcp),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.try_clone().map(AnyStream::Unix),
        }
    }

    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
        }
    }
}
