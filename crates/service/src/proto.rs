//! The line-oriented JSON protocol the sweep service speaks.
//!
//! Every request is one line of JSON; every response is one or more lines
//! of JSON. A connection interleaves nothing: responses to one request are
//! fully written (terminated by the `{"done":N}` line for batches) before
//! the next request's responses begin.
//!
//! Requests:
//!
//! | line | meaning |
//! |---|---|
//! | `{"jobs":[<SweepRequest>...], "per_tile":bool?}` | evaluate a batch |
//! | `{"cmd":"ping"}` | liveness check |
//! | `{"cmd":"metrics"}` | counter snapshot |
//! | `{"cmd":"shutdown"}` | stop the daemon after acking |
//!
//! Batch responses, one line per job **in job order**, streamed as each
//! resolves: `{"job":i,"result":<TbResult>}` or
//! `{"job":i,"error":{"stage":...,"reason":...}}`, then `{"done":N}`.
//! A malformed job inside a well-formed batch becomes that job's error
//! line — it never disturbs its siblings. Only a line that is not a
//! well-formed request at all gets the top-level `{"error":...}` response.
//!
//! Everything here renders through [`ruche_telemetry::json::Json`], whose
//! string escaping covers `"` and `\` only — so [`JobError::new`]
//! sanitizes embedded newlines/tabs (multi-line verifier reports would
//! otherwise break both the line framing and the codec).

use ruche_noc::wire::opt_bool;
use ruche_telemetry::json::{parse, Json};
use ruche_traffic::{SweepRequest, TbResult};
use std::fmt;

/// A structured job rejection: which screening `stage` refused the job
/// and a single-line human-readable `reason`.
///
/// Stages, in screening order: `request` (the job did not decode),
/// `config` (`NetworkConfig::validate`), `testbench`
/// (`Testbench::validate`), `pattern` (`Pattern::validate` against the
/// config's dimensions), `faults` (`FaultModel::validate`), `verify`
/// (the `ruche-verify` deadlock-freedom proof found errors), and `engine`
/// (the simulation worker itself failed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// The screening stage that rejected the job.
    pub stage: String,
    /// Single-line description (newlines and tabs sanitized away).
    pub reason: String,
}

impl JobError {
    /// Builds an error, flattening `reason` onto one line: the protocol
    /// is line-framed and the JSON codec escapes only `"` and `\`, so a
    /// raw newline from a multi-line verifier report must never reach
    /// the wire.
    pub fn new(stage: impl Into<String>, reason: impl Into<String>) -> Self {
        let reason = reason
            .into()
            .replace('\r', "")
            .replace('\n', "; ")
            .replace('\t', " ");
        JobError {
            stage: stage.into(),
            reason,
        }
    }

    /// The wire form: `{"stage":...,"reason":...}`.
    pub fn to_wire(&self) -> Json {
        Json::Obj(vec![
            ("stage".into(), Json::Str(self.stage.clone())),
            ("reason".into(), Json::Str(self.reason.clone())),
        ])
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.stage, self.reason)
    }
}

impl std::error::Error for JobError {}

/// A batch of sweep jobs. Jobs that failed to decode ride along as
/// errors so the engine can answer them in position without aborting
/// their siblings.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The decoded jobs, in request order; a malformed job is its error.
    pub jobs: Vec<Result<SweepRequest, JobError>>,
    /// Keep per-tile latency accumulators (bypasses the result store,
    /// which persists scalar aggregates only).
    pub per_tile: bool,
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Evaluate a batch of sweep jobs.
    Batch(Batch),
    /// Liveness check; answered with [`render_pong`].
    Ping,
    /// Counter snapshot; answered with the engine's metrics line.
    Metrics,
    /// Stop the daemon after acking with [`render_bye`].
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A [`JobError`] with stage `request` when the line is not a well-formed
/// request at all. Malformed *jobs* inside a well-formed batch are not an
/// error here — they come back as `Err` entries of [`Batch::jobs`].
pub fn parse_request(line: &str) -> Result<Request, JobError> {
    let v = parse(line).map_err(|e| JobError::new("request", format!("malformed JSON: {e}")))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(JobError::new("request", "expected a JSON object"));
    }
    if let Some(cmd) = v.get("cmd") {
        let name = cmd
            .as_str()
            .ok_or_else(|| JobError::new("request", "cmd must be a string"))?;
        return match name {
            "ping" => Ok(Request::Ping),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(JobError::new(
                "request",
                format!("unknown command {other:?}"),
            )),
        };
    }
    let jobs = v
        .get("jobs")
        .ok_or_else(|| JobError::new("request", "expected \"jobs\" or \"cmd\""))?
        .as_arr()
        .ok_or_else(|| JobError::new("request", "jobs must be an array"))?;
    if jobs.is_empty() {
        return Err(JobError::new("request", "jobs must not be empty"));
    }
    let per_tile = opt_bool(&v, "per_tile")
        .map_err(|e| JobError::new("request", e.to_string()))?
        .unwrap_or(false);
    let jobs = jobs
        .iter()
        .map(|j| {
            SweepRequest::from_wire(j)
                .map_err(|e| JobError::new("request", format!("{}: {}", e.field, e.reason)))
        })
        .collect();
    Ok(Request::Batch(Batch { jobs, per_tile }))
}

/// Renders a per-job success line: `{"job":i,"result":{...}}`.
pub fn render_job_result(i: usize, res: &TbResult) -> String {
    Json::Obj(vec![
        ("job".into(), Json::U64(i as u64)),
        ("result".into(), res.to_wire()),
    ])
    .render()
}

/// Renders a per-job rejection line: `{"job":i,"error":{...}}`.
pub fn render_job_error(i: usize, err: &JobError) -> String {
    Json::Obj(vec![
        ("job".into(), Json::U64(i as u64)),
        ("error".into(), err.to_wire()),
    ])
    .render()
}

/// Renders the batch terminator: `{"done":N}` where `N` is the number of
/// jobs the batch carried (and thus of per-job lines written before it).
pub fn render_done(jobs: usize) -> String {
    Json::Obj(vec![("done".into(), Json::U64(jobs as u64))]).render()
}

/// Renders the top-level error line for an unparseable request.
pub fn render_request_error(err: &JobError) -> String {
    Json::Obj(vec![("error".into(), err.to_wire())]).render()
}

/// Renders the ping response: `{"ok":true}`.
pub fn render_pong() -> String {
    Json::Obj(vec![("ok".into(), Json::Bool(true))]).render()
}

/// Renders the shutdown acknowledgement: `{"bye":true}`.
pub fn render_bye() -> String {
    Json::Obj(vec![("bye".into(), Json::Bool(true))]).render()
}

/// If `line` is a batch terminator, the job count it carries. Clients use
/// this to know a batch's responses are complete.
pub fn done_count(line: &str) -> Option<u64> {
    parse(line).ok()?.get("done")?.as_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_flattened_to_one_line() {
        let err = JobError::new("verify", "line one\nline two\twith tab\r\n");
        assert_eq!(err.reason, "line one; line two with tab; ");
        let rendered = render_request_error(&err);
        assert!(!rendered.contains('\n'), "{rendered}");
        let back = parse(&rendered).expect("response line parses");
        assert_eq!(
            back.get("error")
                .and_then(|e| e.get("stage"))
                .and_then(Json::as_str),
            Some("verify")
        );
    }

    #[test]
    fn commands_parse_and_unknown_ones_do_not() {
        assert!(matches!(
            parse_request(r#"{"cmd":"ping"}"#),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"metrics"}"#),
            Ok(Request::Metrics)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
        assert_eq!(
            parse_request(r#"{"cmd":"warp"}"#).unwrap_err().stage,
            "request"
        );
        assert_eq!(parse_request(r#"{"cmd":7}"#).unwrap_err().stage, "request");
    }

    #[test]
    fn done_lines_are_recognized() {
        assert_eq!(done_count(&render_done(3)), Some(3));
        assert_eq!(done_count(r#"{"job":0,"result":{}}"#), None);
        assert_eq!(done_count("not json"), None);
    }
}
