//! The service engine: screening, deduplication, and execution.
//!
//! A batch flows through three gates before any cycle is simulated:
//!
//! 1. **Screening.** Each job is validated (`NetworkConfig::validate`,
//!    `Testbench::validate`, `Pattern::validate`, `FaultModel::validate`)
//!    and then proven deadlock-free by `ruche-verify`
//!    ([`verify_cached`](ruche_verify::verify_cached) /
//!    [`verify_faulted_cached`](ruche_verify::verify_faulted_cached)).
//!    A rejected job becomes a structured [`JobError`] in its response
//!    slot; its siblings are untouched.
//! 2. **Store lookup.** Jobs already answered by the shared
//!    [`ResultStore`] stream back immediately.
//! 3. **In-flight deduplication.** A job identical (same canonical
//!    cache key) to one some connection is already simulating *joins* it:
//!    exactly one simulation runs, every waiter receives the published
//!    result. The dedup map spans connections, so two clients submitting
//!    the same sweep concurrently cost one simulation.
//!
//! What remains is simulated on the existing [`SweepRunner`] worker pool
//! (honoring `step_threads` / `StepMode`), with results published to
//! waiters and streamed to the batch's own connection **in job order**,
//! incrementally — job `i`'s line is written the moment jobs `0..=i` have
//! all resolved, not when the whole batch finishes.
//!
//! Responses are **byte-stable**: a scalar batch (the default) answers
//! with per-tile accumulators scrubbed whether the job was freshly
//! simulated, served from the store, or joined in flight; per-tile data
//! comes back only when the batch asks for it (`"per_tile":true`).

use crate::metrics::Metrics;
use crate::proto::{Batch, JobError};
use ruche_bench::store::ResultStore;
use ruche_bench::sweep::{SweepJob, SweepRunner};
use ruche_noc::topology::StepMode;
use ruche_traffic::{SweepRequest, TbResult};
// lint:allow(hash-order): the in-flight map is get/insert/remove by key
// only; nothing ever iterates it, so its order cannot reach any artifact.
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// How one job resolved: a result, or the structured error that stopped it.
pub type Outcome = Result<TbResult, JobError>;

/// One simulation in flight: a publish-once slot plus the condvar its
/// waiters block on. Cloned `Arc`s of this are handed to every batch that
/// deduplicates onto the same job.
#[derive(Debug, Default)]
struct InFlight {
    slot: Mutex<Option<Outcome>>,
    cv: Condvar,
}

impl InFlight {
    /// First write wins; later publishes are no-ops. Wakes every waiter.
    fn publish(&self, outcome: Outcome) {
        let mut slot = self.slot.lock().expect("in-flight slot lock");
        if slot.is_none() {
            *slot = Some(outcome);
            self.cv.notify_all();
        }
    }

    /// Blocks until a publish, then returns the outcome.
    fn wait(&self) -> Outcome {
        let mut slot = self.slot.lock().expect("in-flight slot lock");
        while slot.is_none() {
            slot = self.cv.wait(slot).expect("in-flight slot lock");
        }
        slot.clone().expect("slot checked non-empty")
    }
}

/// Publishes an `engine`-stage error to every flight still unpublished
/// when dropped. Held across the simulation so that even a panicking
/// worker can never strand a waiter on another connection: their `wait`
/// returns this error instead of blocking forever. Publishing is
/// first-write-wins, so flights that already carry results are untouched.
struct PublishGuard {
    flights: Vec<Arc<InFlight>>,
}

impl Drop for PublishGuard {
    fn drop(&mut self) {
        for f in &self.flights {
            f.publish(Err(JobError::new(
                "engine",
                "simulation worker failed before publishing this job",
            )));
        }
    }
}

/// How a batch slot resolves during emission: screened/stored outcomes
/// are ready immediately; deduplicated jobs wait on their flight.
enum Slot {
    Ready(Outcome),
    Wait(Arc<InFlight>),
}

/// The long-lived evaluation engine a daemon (or the offline `eval` path)
/// drives. Shareable across connection threads by reference.
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    step_threads: usize,
    step_mode: Option<StepMode>,
    store: Option<Arc<ResultStore>>,
    inflight: Mutex<HashMap<String, Arc<InFlight>>>,
    metrics: Metrics,
}

impl Engine {
    /// An engine whose simulations run on `threads` pool workers, with no
    /// result store and serial stepping. Builder methods refine it.
    pub fn new(threads: usize) -> Self {
        Engine {
            threads: threads.max(1),
            step_threads: 0,
            step_mode: None,
            store: None,
            inflight: Mutex::new(HashMap::new()),
            metrics: Metrics::new(),
        }
    }

    /// Shards each simulation's `Network::step` across `n` threads
    /// (0 = serial). Pure performance knob: results and cache keys are
    /// unaffected.
    pub fn with_step_threads(mut self, n: usize) -> Self {
        self.step_threads = n;
        self
    }

    /// Selects the clock-advance engine for simulated jobs. Pure
    /// performance knob: results and cache keys are unaffected.
    pub fn with_step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = Some(mode);
        self
    }

    /// Backs the engine with a result store shared by every connection
    /// (and, through the same directory, by offline `repro` runs).
    pub fn with_store(mut self, store: Arc<ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The result store, if one backs this engine.
    pub fn store(&self) -> Option<&Arc<ResultStore>> {
        self.store.as_ref()
    }

    /// This engine's counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Evaluates `batch`, calling `emit(i, outcome)` for each job in
    /// job order, each invoked as soon as jobs `0..=i` have resolved.
    /// Rejected jobs (decode or screening) emit their error without
    /// disturbing siblings; deduplicated jobs emit the result published
    /// by whichever connection owns the simulation.
    pub fn eval_batch(&self, batch: &Batch, emit: &mut dyn FnMut(usize, &Outcome)) {
        Metrics::add(&self.metrics.batches, 1);
        Metrics::add(&self.metrics.jobs, batch.jobs.len() as u64);

        let mut slots: Vec<Slot> = Vec::with_capacity(batch.jobs.len());
        let mut owned: Vec<(String, SweepJob, Arc<InFlight>)> = Vec::new();
        for req in &batch.jobs {
            let req = match req {
                Err(e) => {
                    Metrics::add(&self.metrics.rejected, 1);
                    slots.push(Slot::Ready(Err(e.clone())));
                    continue;
                }
                Ok(r) => r,
            };
            if let Err(e) = screen(req) {
                Metrics::add(&self.metrics.rejected, 1);
                slots.push(Slot::Ready(Err(e)));
                continue;
            }
            let mut job = SweepJob::new(req.cfg.clone(), req.tb.clone());
            if batch.per_tile {
                job = job.with_per_tile();
            }
            if !batch.per_tile {
                if let Some(res) = self.store.as_ref().and_then(|s| s.get(&job.cache_key())) {
                    Metrics::add(&self.metrics.store_hits, 1);
                    slots.push(Slot::Ready(Ok(res)));
                    continue;
                }
            }
            // The dedup key carries the per-tile flag: a scalar-only run
            // must not be answered by per-tile data or vice versa.
            let key = format!("{}|{}", u8::from(batch.per_tile), job.cache_key());
            let mut inflight = self.inflight.lock().expect("in-flight map lock");
            match inflight.get(&key) {
                Some(flight) => {
                    Metrics::add(&self.metrics.inflight_joins, 1);
                    slots.push(Slot::Wait(flight.clone()));
                }
                None => {
                    let flight = Arc::new(InFlight::default());
                    inflight.insert(key.clone(), flight.clone());
                    owned.push((key, job, flight.clone()));
                    slots.push(Slot::Wait(flight));
                }
            }
        }

        if owned.is_empty() {
            for (i, slot) in slots.iter().enumerate() {
                emit_slot(i, slot, emit);
            }
            return;
        }

        std::thread::scope(|s| {
            let worker = s.spawn(|| self.simulate(&owned));
            for (i, slot) in slots.iter().enumerate() {
                emit_slot(i, slot, emit);
            }
            // A panicked simulation has already error-published every
            // owned flight (PublishGuard), and those errors were emitted
            // above — swallow the panic rather than tearing down the
            // connection thread mid-response.
            let _ = worker.join();
        });

        // Retire owned keys so later identical jobs consult the store
        // (now populated) instead of a dead flight. Guarded by pointer
        // identity: never evict a newer flight someone else registered.
        let mut inflight = self.inflight.lock().expect("in-flight map lock");
        for (key, _, flight) in &owned {
            if inflight
                .get(key)
                .is_some_and(|cur| Arc::ptr_eq(cur, flight))
            {
                inflight.remove(key);
            }
        }
    }

    /// Runs the owned jobs on a [`SweepRunner`] pool, publishing each
    /// result to its flight the moment the worker finishes it.
    fn simulate(&self, owned: &[(String, SweepJob, Arc<InFlight>)]) {
        let guard = PublishGuard {
            flights: owned.iter().map(|(_, _, f)| f.clone()).collect(),
        };
        let mut runner = SweepRunner::uncached(self.threads);
        if self.step_threads > 0 {
            runner = runner.with_step_threads(self.step_threads);
        }
        if let Some(mode) = self.step_mode {
            runner = runner.with_step_mode(mode);
        }
        if let Some(store) = &self.store {
            runner = runner.with_store(store.clone());
        }
        let jobs: Vec<SweepJob> = owned.iter().map(|(_, job, _)| job.clone()).collect();
        // Scalar jobs publish with per-tile data scrubbed — exactly what
        // a store hit would answer — so a job's response bytes are
        // identical whether it was simulated, stored, or joined.
        runner.run_all_with(&jobs, |k, res| {
            let res = if jobs[k].per_tile {
                res.clone()
            } else {
                TbResult {
                    per_tile_latency: Vec::new(),
                    ..res.clone()
                }
            };
            owned[k].2.publish(Ok(res));
        });
        Metrics::add(&self.metrics.simulated, runner.simulated as u64);
        // The runner can itself hit the store (a concurrent process wrote
        // the key between our front-door miss and the pool claiming it).
        Metrics::add(&self.metrics.store_hits, runner.cache_hits as u64);
        drop(guard);
    }
}

/// Resolves one slot (immediately or by waiting on its flight) and emits.
fn emit_slot(i: usize, slot: &Slot, emit: &mut dyn FnMut(usize, &Outcome)) {
    match slot {
        Slot::Ready(outcome) => emit(i, outcome),
        Slot::Wait(flight) => emit(i, &flight.wait()),
    }
}

/// The front door: full validation plus the `ruche-verify`
/// deadlock-freedom proof, all before a single cycle is simulated. The
/// verifier calls are memoized per config, so screening a sweep that
/// varies only traffic parameters pays for one proof.
fn screen(req: &SweepRequest) -> Result<(), JobError> {
    req.cfg
        .validate()
        .map_err(|e| JobError::new("config", e.to_string()))?;
    req.tb
        .validate()
        .map_err(|e| JobError::new("testbench", e.to_string()))?;
    req.tb
        .pattern
        .validate(req.cfg.dims)
        .map_err(|e| JobError::new("pattern", e.to_string()))?;
    req.tb
        .faults
        .validate(&req.cfg)
        .map_err(|e| JobError::new("faults", e.to_string()))?;
    if req.tb.faults.is_empty() {
        ruche_verify::verify_cached(&req.cfg).map_err(|e| JobError::new("verify", e))
    } else {
        ruche_verify::verify_faulted_cached(&req.cfg, &req.tb.faults)
            .map_err(|e| JobError::new("verify", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruche_noc::geometry::{Coord, Dims};
    use ruche_noc::topology::NetworkConfig;
    use ruche_traffic::{Pattern, Testbench};

    fn quick(rate: f64) -> Testbench {
        Testbench::builder(Pattern::UniformRandom, rate)
            .quick()
            .build()
            .expect("valid testbench")
    }

    #[test]
    fn screening_names_the_failing_stage() {
        let dims = Dims::new(4, 4);
        let bad_cfg = SweepRequest::new(NetworkConfig::mesh(dims).with_fifo_depth(0), quick(0.1));
        assert_eq!(screen(&bad_cfg).unwrap_err().stage, "config");

        let bad_pattern = SweepRequest::new(
            NetworkConfig::mesh(dims),
            Testbench::builder(Pattern::Hotspot(Coord::new(9, 9)), 0.1)
                .quick()
                .build()
                .expect("builder leaves pattern unvalidated"),
        );
        assert_eq!(screen(&bad_pattern).unwrap_err().stage, "pattern");

        assert!(screen(&SweepRequest::new(NetworkConfig::mesh(dims), quick(0.1))).is_ok());
    }

    #[test]
    fn publish_is_first_write_wins() {
        let flight = InFlight::default();
        flight.publish(Ok(sample()));
        flight.publish(Err(JobError::new("engine", "late failure")));
        assert!(flight.wait().is_ok(), "first publish sticks");
    }

    #[test]
    fn guard_error_publishes_unpublished_flights_only() {
        let done = Arc::new(InFlight::default());
        let pending = Arc::new(InFlight::default());
        done.publish(Ok(sample()));
        drop(PublishGuard {
            flights: vec![done.clone(), pending.clone()],
        });
        assert!(done.wait().is_ok());
        assert_eq!(pending.wait().unwrap_err().stage, "engine");
    }

    fn sample() -> TbResult {
        TbResult {
            offered: 0.1,
            accepted: 0.1,
            avg_latency: 5.0,
            p99_latency: 9.0,
            delivered: 10,
            lost: 0,
            per_tile_latency: Vec::new(),
            saturated: false,
        }
    }
}
