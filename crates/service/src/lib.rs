//! # ruche-service
//!
//! The sweep service layer: a long-lived daemon (`ruche-sim serve`)
//! accepting batched sweep requests as line-oriented JSON over a TCP or
//! Unix socket, pre-screening every configuration through `ruche-verify`,
//! deduplicating identical in-flight jobs across concurrent clients,
//! executing on the existing `ruche-bench` sweep pool, and streaming
//! per-job results back incrementally in deterministic job order.
//!
//! The crate splits along the request's path:
//!
//! * [`proto`] — the wire protocol: request parsing, response rendering,
//!   structured [`JobError`]s.
//! * [`engine`] — screening, the cross-connection in-flight dedup map,
//!   and execution against the shared
//!   [`ResultStore`](ruche_bench::ResultStore).
//! * [`daemon`] / [`client`] — the socket server and a blocking client.
//! * [`metrics`] — counters (no wall-clock anything), exported over the
//!   protocol and through `ruche-telemetry` probes.
//!
//! [`respond`] is the seam tying them together: one request line in,
//! response lines out. The daemon calls it per connection line; the
//! offline `ruche-sim eval` path calls the very same function, which is
//! why daemon output is byte-identical to offline output
//! (`docs/SERVICE.md` walks through the guarantees).

pub mod client;
pub mod daemon;
pub mod engine;
pub mod metrics;
pub mod proto;
mod sock;

pub use client::Client;
pub use daemon::Server;
pub use engine::{Engine, Outcome};
pub use metrics::Metrics;
pub use proto::{parse_request, Batch, JobError, Request};
pub use sock::Bind;

use proto::{
    render_bye, render_done, render_job_error, render_job_result, render_pong, render_request_error,
};

/// What the transport should do after a request: keep serving, or stop
/// the daemon (the answer to `{"cmd":"shutdown"}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests.
    Continue,
    /// Stop the daemon once this connection's responses are written.
    Shutdown,
}

/// Answers one request line, writing each response line through `out`
/// (no trailing newline; the transport frames lines). Batch responses
/// stream through `out` in job order as they resolve.
///
/// This is the single entry point shared by the daemon connection loop
/// and the offline `ruche-sim eval` path — both produce byte-identical
/// response lines for the same request against equivalent state.
pub fn respond(engine: &Engine, line: &str, out: &mut dyn FnMut(&str)) -> Control {
    let line = line.trim();
    if line.is_empty() {
        return Control::Continue;
    }
    Metrics::add(&engine.metrics().requests, 1);
    match parse_request(line) {
        Err(e) => out(&render_request_error(&e)),
        Ok(Request::Ping) => out(&render_pong()),
        Ok(Request::Metrics) => out(&engine.metrics().render()),
        Ok(Request::Shutdown) => {
            out(&render_bye());
            return Control::Shutdown;
        }
        Ok(Request::Batch(batch)) => {
            let jobs = batch.jobs.len();
            engine.eval_batch(&batch, &mut |i, outcome| {
                out(&match outcome {
                    Ok(res) => render_job_result(i, res),
                    Err(e) => render_job_error(i, e),
                });
            });
            out(&render_done(jobs));
        }
    }
    Control::Continue
}
