//! The `ruche-sim serve` daemon: accepts connections on a TCP or Unix
//! socket and drives one [`Engine`] shared by every connection.
//!
//! Each connection gets its own thread reading request lines and writing
//! response lines through [`crate::respond`] — exactly the function the
//! offline `eval` path uses, which is what makes daemon output
//! byte-identical to offline output. The accept loop polls a shutdown
//! flag (set by the `{"cmd":"shutdown"}` request or by the embedding
//! process), then joins every connection thread before returning, so
//! shutdown is clean: no response line is ever torn.

use crate::engine::Engine;
use crate::sock::{AnyListener, AnyStream, Bind};
use crate::{respond, Control};
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a connection read blocks before re-checking the shutdown
/// flag. Also bounds how stale the accept loop's view of the flag can be.
const POLL: Duration = Duration::from_millis(25);

/// A bound, not-yet-running service daemon.
pub struct Server {
    engine: Arc<Engine>,
    listener: AnyListener,
    addr: String,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `engine` to `bind`. The daemon does not serve until
    /// [`Server::run`].
    ///
    /// # Errors
    ///
    /// Any I/O error from binding the socket.
    pub fn bind(bind: &Bind, engine: Engine) -> io::Result<Self> {
        let listener = AnyListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.addr();
        Ok(Server {
            engine: Arc::new(engine),
            listener,
            addr,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address: `host:port` for TCP (ephemeral ports resolved),
    /// the socket path for Unix.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The engine every connection shares.
    pub fn engine(&self) -> Arc<Engine> {
        self.engine.clone()
    }

    /// A flag that stops the daemon when set (the in-band
    /// `{"cmd":"shutdown"}` request sets it too).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Serves until shut down, then joins every connection thread.
    ///
    /// # Errors
    ///
    /// Any accept-loop I/O error other than the nonblocking/interrupted
    /// kinds the loop absorbs.
    pub fn run(self) -> io::Result<()> {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok(stream) => {
                    let engine = self.engine.clone();
                    let shutdown = self.shutdown.clone();
                    conns.push(std::thread::spawn(move || {
                        serve_connection(stream, &engine, &shutdown);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            conns.retain(|h| !h.is_finished());
        }
        for h in conns {
            let _ = h.join();
        }
        self.listener.cleanup();
        Ok(())
    }
}

/// One connection: read request lines, answer each through the shared
/// engine, honor shutdown. Read timeouts keep the thread responsive to
/// the flag even when the client goes quiet.
fn serve_connection(stream: AnyStream, engine: &Engine, shutdown: &AtomicBool) {
    crate::metrics::Metrics::add(&engine.metrics().connections, 1);
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let mut write_failed = false;
                let control = respond(engine, line.trim(), &mut |resp| {
                    write_failed |= write_line(&mut writer, resp).is_err();
                });
                line.clear();
                if write_failed {
                    break;
                }
                if matches!(control, Control::Shutdown) {
                    shutdown.store(true, Ordering::SeqCst);
                    break;
                }
            }
            // A timeout mid-line leaves the partial line in `line`
            // (read_line appends); the retry keeps appending to it.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Writes one response line and flushes it, so clients see responses as
/// they stream rather than on buffer boundaries.
fn write_line(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(s.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}
