//! Service counters.
//!
//! Deliberately counter-only — no wall-clock latencies — so the metrics
//! surface keeps the repo's determinism discipline: every value is a
//! function of the requests served, never of time. Counters export both
//! as a single-line JSON response (the `{"cmd":"metrics"}` answer) and
//! through the [`ruche_telemetry::probe::Probe`] interface.

use ruche_telemetry::json::Json;
use ruche_telemetry::probe::Probe;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for one [`Engine`](crate::Engine). All updates are
/// relaxed: values are observability, never synchronization.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted by the daemon.
    pub(crate) connections: AtomicU64,
    /// Request lines processed (batches and commands alike).
    pub(crate) requests: AtomicU64,
    /// Batch requests processed.
    pub(crate) batches: AtomicU64,
    /// Jobs carried by those batches (including rejected ones).
    pub(crate) jobs: AtomicU64,
    /// Jobs refused by decode or pre-screening (config/verifier/...).
    pub(crate) rejected: AtomicU64,
    /// Jobs answered from the result store without simulating.
    pub(crate) store_hits: AtomicU64,
    /// Jobs that joined an identical job already in flight.
    pub(crate) inflight_joins: AtomicU64,
    /// Jobs actually simulated.
    pub(crate) simulated: AtomicU64,
}

impl Metrics {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Connections accepted by the daemon.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Request lines processed.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Batch requests processed.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Jobs received, including rejected ones.
    pub fn jobs(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Jobs refused by decode or pre-screening.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Jobs answered from the result store without simulating.
    pub fn store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// Jobs that joined an identical in-flight job instead of simulating.
    pub fn inflight_joins(&self) -> u64 {
        self.inflight_joins.load(Ordering::Relaxed)
    }

    /// Jobs actually simulated.
    pub fn simulated(&self) -> u64 {
        self.simulated.load(Ordering::Relaxed)
    }

    /// A named snapshot of every counter, in fixed declaration order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("connections", self.connections()),
            ("requests", self.requests()),
            ("batches", self.batches()),
            ("jobs", self.jobs()),
            ("rejected", self.rejected()),
            ("store_hits", self.store_hits()),
            ("inflight_joins", self.inflight_joins()),
            ("simulated", self.simulated()),
        ]
    }

    /// The single-line `{"metrics":{...}}` response.
    pub fn render(&self) -> String {
        Json::Obj(vec![(
            "metrics".into(),
            Json::Obj(
                self.snapshot()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Json::U64(v)))
                    .collect(),
            ),
        )])
        .render()
    }

    /// Reports every counter as a probe scalar, prefixed `service.`.
    pub fn record(&self, probe: &mut dyn Probe) {
        for (name, value) in self.snapshot() {
            probe.scalar(&format!("service.{name}"), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruche_telemetry::json::parse;

    #[test]
    fn metrics_render_on_one_line_and_roundtrip() {
        let m = Metrics::new();
        Metrics::add(&m.jobs, 3);
        Metrics::add(&m.simulated, 2);
        Metrics::add(&m.store_hits, 1);
        let line = m.render();
        assert!(!line.contains('\n'));
        let v = parse(&line).expect("metrics line parses");
        let inner = v.get("metrics").expect("metrics object");
        assert_eq!(inner.get("jobs").and_then(Json::as_u64), Some(3));
        assert_eq!(inner.get("simulated").and_then(Json::as_u64), Some(2));
        assert_eq!(inner.get("connections").and_then(Json::as_u64), Some(0));
    }
}
