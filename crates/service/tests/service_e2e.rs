//! End-to-end contracts of the service daemon:
//!
//! * daemon responses are byte-identical to the offline `respond` path,
//! * a verifier-rejected job fails fast without disturbing siblings,
//! * concurrent identical batches share one simulation (metrics prove it),
//! * shutdown is clean (the accept loop returns, threads join).

use ruche_bench::{ResultStore, SweepJob, SweepRunner};
use ruche_noc::geometry::Dims;
use ruche_noc::topology::NetworkConfig;
use ruche_service::{respond, Bind, Client, Engine, Server};
use ruche_telemetry::json::{parse, Json};
use ruche_traffic::{Pattern, SweepRequest, Testbench};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

fn quick(rate: f64) -> Testbench {
    Testbench::builder(Pattern::UniformRandom, rate)
        .quick()
        .build()
        .expect("valid testbench")
}

fn batch_line(reqs: &[SweepRequest]) -> String {
    Json::Obj(vec![(
        "jobs".into(),
        Json::Arr(reqs.iter().map(SweepRequest::to_wire).collect()),
    )])
    .render()
}

/// Collects the offline response lines for one request line.
fn offline_lines(engine: &Engine, line: &str) -> Vec<String> {
    let mut out = Vec::new();
    respond(engine, line, &mut |l| out.push(l.to_string()));
    out
}

/// A fresh scratch directory per test case (no tempfile dependency).
fn scratch(case: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ruche-service-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Boots a daemon on an ephemeral TCP port; returns its bind target and
/// the thread driving `Server::run`.
fn boot(engine: Engine) -> (Bind, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&Bind::tcp("127.0.0.1:0"), engine).expect("bind ephemeral port");
    let bind = Bind::tcp(server.addr());
    (bind, std::thread::spawn(move || server.run()))
}

#[test]
fn daemon_responses_are_byte_identical_to_the_offline_path() {
    let reqs = [
        SweepRequest::new(NetworkConfig::mesh(Dims::new(4, 4)), quick(0.05)),
        SweepRequest::new(NetworkConfig::torus(Dims::new(4, 4)), quick(0.1)),
    ];
    let line = batch_line(&reqs);

    let offline = offline_lines(&Engine::new(2), &line);

    let (bind, server) = boot(Engine::new(2));
    let mut client = Client::connect(&bind).expect("connect");
    let online = client.submit(&line).expect("submit");
    client.shutdown().expect("clean shutdown");
    server.join().expect("no panic").expect("accept loop ok");

    assert_eq!(offline, online, "daemon and offline output diverge");
    assert_eq!(online.last().map(String::as_str), Some(r#"{"done":2}"#));
}

#[test]
fn daemon_payloads_match_the_repro_sweep_engine_byte_for_byte() {
    // The acceptance bar: a batch answered by the daemon must carry the
    // same results as running the identical sweep through `SweepRunner`,
    // the engine `repro` drives.
    let reqs = [
        SweepRequest::new(NetworkConfig::mesh(Dims::new(4, 4)), quick(0.05)),
        SweepRequest::new(NetworkConfig::torus(Dims::new(4, 4)), quick(0.1)),
    ];
    let jobs: Vec<SweepJob> = reqs
        .iter()
        .map(|r| SweepJob::new(r.cfg.clone(), r.tb.clone()))
        .collect();
    let direct = SweepRunner::uncached(1).run_all(&jobs);

    let (bind, server) = boot(Engine::new(1));
    let mut client = Client::connect(&bind).expect("connect");
    let online = client.submit(&batch_line(&reqs)).expect("submit");
    client.shutdown().expect("clean shutdown");
    server.join().expect("no panic").expect("accept loop ok");

    for (i, res) in direct.iter().enumerate() {
        // Scalar sweeps scrub per-tile accumulators (exactly what the
        // store persists and repro's tables consume).
        let scrubbed = ruche_traffic::TbResult {
            per_tile_latency: Vec::new(),
            ..res.clone()
        };
        let payload = parse(&online[i]).expect("response parses");
        assert_eq!(
            payload.get("result").map(Json::render),
            Some(scrubbed.to_wire().render()),
            "job {i} diverges from the repro sweep path"
        );
    }
}

#[test]
fn a_rejected_job_fails_fast_without_disturbing_siblings() {
    let good = SweepRequest::new(NetworkConfig::mesh(Dims::new(4, 4)), quick(0.05));
    let rejected = SweepRequest::new(
        NetworkConfig::mesh(Dims::new(4, 4)).with_fifo_depth(0),
        quick(0.05),
    );
    let sibling = SweepRequest::new(NetworkConfig::mesh(Dims::new(4, 4)), quick(0.1));
    let line = batch_line(&[good, rejected, sibling]);

    let (bind, server) = boot(Engine::new(2));
    let mut client = Client::connect(&bind).expect("connect");
    let out = client.submit(&line).expect("submit");
    let metrics = client.metrics().expect("metrics");
    client.shutdown().expect("clean shutdown");
    server.join().expect("no panic").expect("accept loop ok");

    assert_eq!(out.len(), 4);
    assert!(
        parse(&out[0]).unwrap().get("result").is_some(),
        "{}",
        out[0]
    );
    let err = parse(&out[1]).unwrap();
    assert_eq!(err.get("job").and_then(Json::as_u64), Some(1));
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("stage"))
            .and_then(Json::as_str),
        Some("config"),
        "{}",
        out[1]
    );
    assert!(
        parse(&out[2]).unwrap().get("result").is_some(),
        "{}",
        out[2]
    );
    assert_eq!(out[3], r#"{"done":3}"#);

    let m = parse(&metrics).unwrap();
    let counter = |name: &str| {
        m.get("metrics")
            .and_then(|v| v.get(name))
            .and_then(Json::as_u64)
    };
    assert_eq!(counter("rejected"), Some(1));
    assert_eq!(counter("simulated"), Some(2));
}

#[test]
fn concurrent_identical_batches_share_one_simulation() {
    let store = Arc::new(ResultStore::open(scratch("dedup")));
    let engine = Arc::new(Engine::new(1).with_store(store));
    let line = batch_line(&[
        SweepRequest::new(NetworkConfig::mesh(Dims::new(4, 4)), quick(0.05)),
        SweepRequest::new(NetworkConfig::mesh(Dims::new(4, 4)), quick(0.08)),
    ]);

    let barrier = Barrier::new(2);
    let outputs: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let engine = &engine;
                let barrier = &barrier;
                let line = &line;
                s.spawn(move || {
                    barrier.wait();
                    offline_lines(engine, line)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });

    assert_eq!(outputs[0], outputs[1], "both clients see identical lines");
    let m = engine.metrics();
    assert_eq!(m.jobs(), 4);
    assert_eq!(m.simulated(), 2, "each distinct job simulated exactly once");
    assert_eq!(
        m.store_hits() + m.inflight_joins(),
        2,
        "the second batch was served from dedup or the store, not re-simulated"
    );

    // A third, sequential submission is pure store hits.
    let before_hits = m.store_hits();
    let again = offline_lines(&engine, &line);
    assert_eq!(again, outputs[0]);
    assert_eq!(m.simulated(), 2, "still no re-simulation");
    assert_eq!(m.store_hits(), before_hits + 2);
}

#[test]
fn identical_jobs_within_one_batch_deduplicate_too() {
    let engine = Engine::new(2);
    let req = SweepRequest::new(NetworkConfig::mesh(Dims::new(4, 4)), quick(0.05));
    let line = batch_line(&[req.clone(), req]);
    let out = offline_lines(&engine, &line);
    assert_eq!(out.len(), 3);
    // Same job, same result bytes, distinct job indices.
    let strip = |l: &str| l.split_once(',').map(|(_, rest)| rest.to_string());
    assert_eq!(strip(&out[0]), strip(&out[1]));
    assert_eq!(engine.metrics().simulated(), 1);
    assert_eq!(engine.metrics().inflight_joins(), 1);
}

#[test]
fn malformed_lines_leave_the_connection_usable() {
    let (bind, server) = boot(Engine::new(1));
    let mut client = Client::connect(&bind).expect("connect");
    client.send("utter { garbage").expect("send");
    let err = client.recv().expect("error response");
    assert!(
        parse(&err).unwrap().get("error").is_some(),
        "structured error: {err}"
    );
    assert!(client.ping().expect("ping after garbage"), "still serving");
    client.shutdown().expect("clean shutdown");
    server.join().expect("no panic").expect("accept loop ok");
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_speaks_the_same_protocol() {
    let path = scratch("unix").join("ruche-service.sock");
    let server = Server::bind(&Bind::unix(&path), Engine::new(1)).expect("bind unix socket");
    let bind = Bind::unix(&path);
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&bind).expect("connect over unix socket");
    assert!(client.ping().expect("ping"));
    client.shutdown().expect("clean shutdown");
    handle.join().expect("no panic").expect("accept loop ok");
    assert!(!path.exists(), "socket file swept on shutdown");
}
