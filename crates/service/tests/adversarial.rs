//! Adversarial request handling: malformed and hostile input must come
//! back as structured single-line errors — never a panic, and never
//! collateral damage to well-formed sibling jobs in the same batch.

use ruche_noc::geometry::Dims;
use ruche_noc::topology::NetworkConfig;
use ruche_service::{respond, Control, Engine};
use ruche_telemetry::json::{parse, Json};
use ruche_traffic::{Pattern, SweepRequest, Testbench};

fn quick(rate: f64) -> Testbench {
    Testbench::builder(Pattern::UniformRandom, rate)
        .quick()
        .build()
        .expect("valid testbench")
}

/// Runs one request line through a fresh engine, collecting responses.
fn run_line(engine: &Engine, line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let control = respond(engine, line, &mut |l| out.push(l.to_string()));
    assert_eq!(control, Control::Continue);
    out
}

/// The `"error"` object of a response line, as `(stage, reason)`.
fn error_of(line: &str) -> Option<(String, String)> {
    let v = parse(line).ok()?;
    let err = v.get("error")?;
    Some((
        err.get("stage")?.as_str()?.to_string(),
        err.get("reason")?.as_str()?.to_string(),
    ))
}

#[test]
fn garbage_lines_get_one_structured_error_each() {
    let engine = Engine::new(1);
    let garbage = [
        "{",
        "}",
        "null",
        "42",
        "\"a string\"",
        "[1,2,3]",
        "{}",
        r#"{"cmd":"warp"}"#,
        r#"{"cmd":7}"#,
        r#"{"jobs":{}}"#,
        r#"{"jobs":[]}"#,
        r#"{"jobs":"many"}"#,
        r#"{"jobs":[{"key_version":1}],"per_tile":"yes"}"#,
        "\u{1}\u{2}binary\u{3}",
        "{\"jobs\":[",
    ];
    for line in garbage {
        let out = run_line(&engine, line);
        assert_eq!(out.len(), 1, "exactly one error line for {line:?}");
        let (stage, reason) = error_of(&out[0]).expect("structured error");
        assert_eq!(stage, "request", "{line:?}");
        assert!(!reason.is_empty());
        assert!(!out[0].contains('\n'), "single-line response");
    }
    // Blank lines are ignored outright.
    assert!(run_line(&engine, "").is_empty());
    assert!(run_line(&engine, "   ").is_empty());
}

#[test]
fn a_malformed_job_never_disturbs_its_siblings() {
    let engine = Engine::new(2);
    let good_a = SweepRequest::new(NetworkConfig::mesh(Dims::new(4, 4)), quick(0.05));
    let good_b = SweepRequest::new(NetworkConfig::mesh(Dims::new(4, 4)), quick(0.1));
    let line = Json::Obj(vec![(
        "jobs".into(),
        Json::Arr(vec![
            good_a.to_wire(),
            parse(r#"{"key_version":1,"config":{"dims":{"cols":"wide"}}}"#).unwrap(),
            good_b.to_wire(),
        ]),
    )])
    .render();

    let out = run_line(&engine, &line);
    assert_eq!(out.len(), 4, "three job lines plus the terminator");
    for (i, resp) in out.iter().take(3).enumerate() {
        let v = parse(resp).expect("response parses");
        assert_eq!(v.get("job").and_then(Json::as_u64), Some(i as u64));
    }
    assert!(
        parse(&out[0]).unwrap().get("result").is_some(),
        "{}",
        out[0]
    );
    let (stage, reason) = error_of(&out[1]).expect("middle job rejected");
    assert_eq!(stage, "request");
    assert!(reason.contains("cols"), "names the field: {reason}");
    assert!(
        parse(&out[2]).unwrap().get("result").is_some(),
        "{}",
        out[2]
    );
    assert_eq!(out[3], r#"{"done":3}"#);

    let m = engine.metrics();
    assert_eq!(m.jobs(), 3);
    assert_eq!(m.rejected(), 1);
    assert_eq!(m.simulated(), 2);
}

#[test]
fn screening_stages_are_named_in_rejections() {
    let engine = Engine::new(1);
    let cases: Vec<(Json, &str)> = vec![
        // fifo_depth 0 decodes but fails NetworkConfig::validate.
        (
            SweepRequest::new(
                NetworkConfig::mesh(Dims::new(4, 4)).with_fifo_depth(0),
                quick(0.1),
            )
            .to_wire(),
            "config",
        ),
        // Injection rate above 1.0 decodes but fails Testbench::validate.
        (
            parse(
                r#"{"key_version":1,
                    "config":{"dims":{"cols":4,"rows":4},"topology":{"kind":"mesh"}},
                    "testbench":{"pattern":{"kind":"uniform-random"},"injection_rate":7.5}}"#,
            )
            .unwrap(),
            "testbench",
        ),
        // A hotspot outside the array decodes but fails Pattern::validate.
        (
            parse(
                r#"{"key_version":1,
                    "config":{"dims":{"cols":4,"rows":4},"topology":{"kind":"mesh"}},
                    "testbench":{"pattern":{"kind":"hotspot","x":40,"y":40},
                                 "injection_rate":0.1}}"#,
            )
            .unwrap(),
            "pattern",
        ),
        // An out-of-bounds dead router decodes but fails FaultModel::validate.
        (
            parse(
                r#"{"key_version":1,
                    "config":{"dims":{"cols":4,"rows":4},"topology":{"kind":"mesh"}},
                    "testbench":{"pattern":{"kind":"uniform-random"},"injection_rate":0.1,
                                 "faults":{"dead_routers":[{"x":9,"y":9}]}}}"#,
            )
            .unwrap(),
            "faults",
        ),
    ];
    for (wire, want_stage) in cases {
        let line = Json::Obj(vec![("jobs".into(), Json::Arr(vec![wire]))]).render();
        let out = run_line(&engine, &line);
        assert_eq!(out.len(), 2, "error line plus terminator");
        let (stage, _) = error_of(&out[0]).expect("rejected");
        assert_eq!(stage, want_stage, "{}", out[0]);
    }
    assert_eq!(engine.metrics().rejected(), 4);
    assert_eq!(engine.metrics().simulated(), 0, "nothing ever simulated");
}

#[test]
fn verifier_reports_flatten_onto_one_line() {
    // Whatever multi-line report a screening stage produces, the response
    // must stay line-framed: one response per job, no embedded newlines.
    let engine = Engine::new(1);
    let bad = SweepRequest::new(
        NetworkConfig::mesh(Dims::new(4, 4)).with_fifo_depth(0),
        quick(0.1),
    );
    let line = Json::Obj(vec![("jobs".into(), Json::Arr(vec![bad.to_wire()]))]).render();
    for resp in run_line(&engine, &line) {
        assert!(!resp.contains('\n'), "{resp:?}");
        parse(&resp).expect("every response line is valid JSON");
    }
}

#[test]
fn per_tile_batches_carry_their_accumulators() {
    let engine = Engine::new(1);
    let req = SweepRequest::new(NetworkConfig::mesh(Dims::new(4, 4)), quick(0.05));
    let line = Json::Obj(vec![
        ("jobs".into(), Json::Arr(vec![req.to_wire()])),
        ("per_tile".into(), Json::Bool(true)),
    ])
    .render();
    let out = run_line(&engine, &line);
    assert_eq!(out.len(), 2);
    let v = parse(&out[0]).unwrap();
    let tiles = v
        .get("result")
        .and_then(|r| r.get("per_tile_latency"))
        .and_then(Json::as_arr)
        .expect("per-tile array present");
    assert_eq!(tiles.len(), 16, "one accumulator per tile of the 4x4");
}
