//! Fixed-bucket streaming histograms.

use crate::json::{self, Json, JsonError};
use serde::{Deserialize, Serialize};

/// A streaming histogram over fixed, inclusive upper-edge buckets.
///
/// Bucket `i` counts values `v` with `edges[i-1] < v <= edges[i]` (bucket 0
/// counts `v <= edges[0]`); one extra overflow bucket counts values above
/// the last edge. Recording never allocates, so a histogram can sit inside
/// a cycle-accurate hot loop.
///
/// # Examples
///
/// ```
/// use ruche_telemetry::Histogram;
///
/// let mut h = Histogram::with_edges(&[0, 1, 2, 4]);
/// for v in [0, 1, 1, 3, 9] {
///     h.record(v);
/// }
/// assert_eq!(h.counts(), &[1, 2, 0, 1, 1]); // last bucket = overflow
/// assert_eq!(h.count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive bucket upper edges, strictly increasing.
    edges: Vec<u64>,
    /// Per-bucket counts; one longer than `edges` (overflow last).
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram over the given inclusive upper edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn with_edges(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one bucket");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "bucket edges must be strictly increasing"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    /// A unit-bucket histogram over `0..=max` (one bucket per exact value,
    /// plus overflow) — the shape used for FIFO occupancy, where `max` is
    /// the FIFO depth.
    pub fn zero_to(max: u64) -> Self {
        let edges: Vec<u64> = (0..=max).collect();
        Self::with_edges(&edges)
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of `v`.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        let i = self.edges.partition_point(|&e| e < v);
        self.counts[i] += n;
        self.total += n;
        self.sum += v * n;
    }

    /// The inclusive bucket upper edges.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Observations above the last edge.
    pub fn overflow(&self) -> u64 {
        *self.counts.last().expect("counts non-empty")
    }

    /// Adds another histogram's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket edges differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.edges, other.edges,
            "cannot merge histograms with different bucket edges"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// The smallest bucket upper edge at or below which at least fraction
    /// `q` of observations fall, or `None` when empty or when the quantile
    /// lands in the overflow bucket (above every edge).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.edges.get(i).copied();
            }
        }
        unreachable!("counts sum to total");
    }

    /// Serializes to deterministic JSON (sorted keys, exact integers).
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("counts".into(), json::u64_array(&self.counts)),
            ("edges".into(), json::u64_array(&self.edges)),
            ("sum".into(), Json::U64(self.sum)),
            ("total".into(), Json::U64(self.total)),
        ])
        .render()
    }

    /// Parses the [`Histogram::to_json`] format.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if `s` is not valid subset JSON or lacks the
    /// expected fields/shape.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let v = json::parse(s)?;
        let shape = JsonError {
            at: 0,
            expected: "a histogram object",
        };
        let edges = v.u64_array("edges").ok_or(shape.clone())?;
        let counts = v.u64_array("counts").ok_or(shape.clone())?;
        let sum = v.get("sum").and_then(Json::as_u64).ok_or(shape.clone())?;
        let total = v.get("total").and_then(Json::as_u64).ok_or(shape.clone())?;
        if edges.is_empty()
            || counts.len() != edges.len() + 1
            || !edges.windows(2).all(|w| w[0] < w[1])
            || counts.iter().sum::<u64>() != total
        {
            return Err(shape);
        }
        Ok(Histogram {
            edges,
            counts,
            total,
            sum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let mut h = Histogram::with_edges(&[10, 20, 40]);
        h.record(0); // <= 10
        h.record(10); // <= 10 (inclusive)
        h.record(11); // <= 20
        h.record(20);
        h.record(40);
        h.record(41); // overflow
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 122);
    }

    #[test]
    fn zero_to_gives_unit_buckets() {
        let mut h = Histogram::zero_to(2);
        assert_eq!(h.edges(), &[0, 1, 2]);
        h.record(0);
        h.record(2);
        h.record(3);
        assert_eq!(h.counts(), &[1, 0, 1, 1]);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::zero_to(4);
        let mut b = Histogram::zero_to(4);
        a.record_n(3, 5);
        for _ in 0..5 {
            b.record(3);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::with_edges(&[1, 2]);
        let mut b = Histogram::with_edges(&[1, 2]);
        a.record(1);
        b.record(2);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 8);
    }

    #[test]
    #[should_panic(expected = "different bucket edges")]
    fn merge_rejects_mismatched_edges() {
        let mut a = Histogram::with_edges(&[1, 2]);
        a.merge(&Histogram::with_edges(&[1, 3]));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_edges_panic() {
        Histogram::with_edges(&[2, 2]);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::with_edges(&[1, 2, 3, 4]);
        for v in [1, 1, 2, 3, 4, 4, 4, 4, 4, 4] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.2), Some(1));
        assert_eq!(h.quantile(0.5), Some(4));
        assert_eq!(h.quantile(1.0), Some(4));
        assert_eq!(Histogram::zero_to(4).quantile(0.5), None);
        let mut o = Histogram::with_edges(&[1]);
        o.record(100);
        assert_eq!(o.quantile(0.9), None, "quantile in the overflow bucket");
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let h = Histogram::zero_to(4);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        // A huge top edge exercises exact u64 serialization without ever
        // being recorded (recording it would overflow `sum`).
        let mut h = Histogram::with_edges(&[0, 1, 2, 4, u64::MAX - 1]);
        for v in [0, 1, 1, 3, 4, 100, 40_000] {
            h.record(v);
        }
        let s = h.to_json();
        let back = Histogram::from_json(&s).unwrap();
        assert_eq!(back, h);
        // And the re-serialization is byte-identical.
        assert_eq!(back.to_json(), s);
    }

    #[test]
    fn from_json_rejects_malformed_shapes() {
        assert!(Histogram::from_json("[]").is_err());
        assert!(Histogram::from_json(r#"{"edges":[1],"counts":[0],"sum":0,"total":0}"#).is_err());
        // total disagrees with counts
        assert!(Histogram::from_json(r#"{"counts":[1,0],"edges":[1],"sum":0,"total":3}"#).is_err());
        assert!(Histogram::from_json("not json").is_err());
    }
}
