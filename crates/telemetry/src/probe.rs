//! The probe sink trait and the built-in sinks.
//!
//! Instrumented components export their counters by *pushing* them into a
//! [`Probe`]: the component decides what exists and what it is called; the
//! probe decides what to do with it (serialize, aggregate, discard). This
//! keeps the simulator free of any serialization dependency and lets the
//! no-probe case compile down to nothing.

use crate::histogram::Histogram;
use crate::json::Json;
use crate::series::TimeSeries;
use std::collections::BTreeMap;

/// A sink that instrumented components export telemetry into.
///
/// Names are dotted paths (`link.0012.E.vc0.traversed`); numeric path
/// segments are zero-padded by convention so lexicographic key order equals
/// numeric order.
pub trait Probe {
    /// Reports a named scalar counter.
    fn scalar(&mut self, name: &str, value: u64);
    /// Reports a named array of scalars (e.g. one slot per node).
    fn scalars(&mut self, name: &str, values: &[u64]);
    /// Reports a named histogram.
    fn histogram(&mut self, name: &str, h: &Histogram);
    /// Reports a named time series.
    fn series(&mut self, name: &str, s: &TimeSeries);
}

/// A probe that discards everything (useful as a placeholder and in tests
/// measuring export overhead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    fn scalar(&mut self, _name: &str, _value: u64) {}
    fn scalars(&mut self, _name: &str, _values: &[u64]) {}
    fn histogram(&mut self, _name: &str, _h: &Histogram) {}
    fn series(&mut self, _name: &str, _s: &TimeSeries) {}
}

/// Forwards everything to an inner probe with a fixed name prefix.
///
/// Lets a component that owns several instrumented sub-components nest
/// each one's export under its own namespace — e.g. the manycore machine
/// exports its two networks under `req.` and `resp.`.
///
/// # Examples
///
/// ```
/// use ruche_telemetry::{JsonProbe, Prefixed, Probe};
///
/// let mut p = JsonProbe::new();
/// Prefixed::new("req.", &mut p).scalar("cycles", 7);
/// assert!(p.into_json().contains("\"req.cycles\": 7"));
/// ```
pub struct Prefixed<'a> {
    prefix: &'a str,
    inner: &'a mut dyn Probe,
}

impl std::fmt::Debug for Prefixed<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prefixed")
            .field("prefix", &self.prefix)
            .finish_non_exhaustive()
    }
}

impl<'a> Prefixed<'a> {
    /// Wraps `inner`, prepending `prefix` to every reported name.
    pub fn new(prefix: &'a str, inner: &'a mut dyn Probe) -> Self {
        Prefixed { prefix, inner }
    }

    fn name(&self, name: &str) -> String {
        let mut s = String::with_capacity(self.prefix.len() + name.len());
        s.push_str(self.prefix);
        s.push_str(name);
        s
    }
}

impl Probe for Prefixed<'_> {
    fn scalar(&mut self, name: &str, value: u64) {
        self.inner.scalar(&self.name(name), value);
    }

    fn scalars(&mut self, name: &str, values: &[u64]) {
        self.inner.scalars(&self.name(name), values);
    }

    fn histogram(&mut self, name: &str, h: &Histogram) {
        self.inner.histogram(&self.name(name), h);
    }

    fn series(&mut self, name: &str, s: &TimeSeries) {
        self.inner.series(&self.name(name), s);
    }
}

/// A probe that collects everything into one deterministic JSON object:
/// keys sorted, integer-exact values — two identical runs produce
/// byte-identical blobs.
///
/// # Examples
///
/// ```
/// use ruche_telemetry::{Histogram, JsonProbe, Probe};
///
/// let mut p = JsonProbe::new();
/// p.annotate("config", "mesh");
/// p.scalar("cycles", 100);
/// p.histogram("occupancy", &Histogram::zero_to(2));
/// let blob = p.into_json();
/// assert!(blob.starts_with('{') && blob.ends_with("}\n"));
/// assert!(blob.contains("\"cycles\": 100"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonProbe {
    /// Name → rendered JSON fragment. `BTreeMap` gives sorted keys.
    entries: BTreeMap<String, String>,
}

impl JsonProbe {
    /// Creates an empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a string annotation (run metadata: config label, pattern).
    pub fn annotate(&mut self, name: &str, value: &str) {
        self.entries
            .insert(name.to_string(), Json::Str(value.to_string()).render());
    }

    /// Number of entries collected.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the collected entries as one pretty-printed JSON object with
    /// sorted keys and a trailing newline.
    pub fn into_json(self) -> String {
        let mut out = String::from("{\n");
        let n = self.entries.len();
        for (i, (k, v)) in self.entries.into_iter().enumerate() {
            out.push_str("  ");
            out.push_str(&Json::Str(k).render());
            out.push_str(": ");
            out.push_str(&v);
            if i + 1 < n {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

impl Probe for JsonProbe {
    fn scalar(&mut self, name: &str, value: u64) {
        self.entries
            .insert(name.to_string(), Json::U64(value).render());
    }

    fn scalars(&mut self, name: &str, values: &[u64]) {
        self.entries
            .insert(name.to_string(), crate::json::u64_array(values).render());
    }

    fn histogram(&mut self, name: &str, h: &Histogram) {
        self.entries.insert(name.to_string(), h.to_json());
    }

    fn series(&mut self, name: &str, s: &TimeSeries) {
        self.entries.insert(name.to_string(), s.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn json_probe_sorts_keys_and_parses_back() {
        let mut p = JsonProbe::new();
        p.scalar("z.last", 1);
        p.scalar("a.first", 2);
        let mut h = Histogram::zero_to(1);
        h.record(1);
        p.histogram("m.hist", &h);
        let mut s = TimeSeries::new(10);
        s.record(3, 4);
        p.series("m.series", &s);
        p.annotate("meta", "label");
        p.scalars("m.array", &[7, 8]);
        assert_eq!(p.len(), 6);
        let blob = p.into_json();
        let a = blob.find("\"a.first\"").unwrap();
        let z = blob.find("\"z.last\"").unwrap();
        assert!(a < z, "keys sorted");
        // The whole blob is valid subset JSON.
        let v = json::parse(&blob).unwrap();
        assert_eq!(v.get("a.first").and_then(json::Json::as_u64), Some(2));
        let hist = v.get("m.hist").unwrap();
        assert_eq!(hist.u64_array("counts"), Some(vec![0, 1, 0]));
        assert_eq!(v.u64_array("m.array"), Some(vec![7, 8]));
    }

    #[test]
    fn identical_inputs_produce_identical_blobs() {
        let build = || {
            let mut p = JsonProbe::new();
            p.scalar("b", 2);
            p.scalar("a", 1);
            p.into_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn null_probe_accepts_everything() {
        let mut p = NullProbe;
        p.scalar("x", 1);
        p.scalars("xs", &[1, 2]);
        p.histogram("h", &Histogram::zero_to(1));
        p.series("s", &TimeSeries::new(1));
    }

    #[test]
    fn prefixed_probe_namespaces_every_kind() {
        let mut p = JsonProbe::new();
        {
            let mut req = Prefixed::new("req.", &mut p);
            req.scalar("cycles", 3);
            req.scalars("loads", &[1, 2]);
            req.histogram("occ", &Histogram::zero_to(1));
            req.series("inj", &TimeSeries::new(4));
        }
        p.scalar("cycles", 9); // unprefixed sibling coexists
        let blob = p.into_json();
        for key in ["req.cycles", "req.loads", "req.occ", "req.inj"] {
            assert!(blob.contains(&format!("\"{key}\"")), "{blob}");
        }
        let v = json::parse(&blob).unwrap();
        assert_eq!(v.get("req.cycles").and_then(json::Json::as_u64), Some(3));
        assert_eq!(v.get("cycles").and_then(json::Json::as_u64), Some(9));
    }

    #[test]
    fn empty_probe_renders_empty_object() {
        let p = JsonProbe::new();
        assert!(p.is_empty());
        assert_eq!(p.into_json(), "{\n}\n");
    }
}
