//! # ruche-telemetry
//!
//! Measurement primitives for cycle-accurate telemetry: fixed-bucket
//! streaming [`Histogram`]s, windowed [`TimeSeries`], and the [`Probe`]
//! sink trait that instrumented simulators export through.
//!
//! The crate is deliberately dependency-light and allocation-disciplined:
//! recording into a histogram or an already-grown time series performs no
//! heap allocation, so attaching telemetry to a hot simulation loop costs
//! only the counter updates themselves.
//!
//! Serialization is a hand-rolled deterministic JSON codec ([`json`]):
//! sorted keys, integer-exact `u64` values, no platform- or locale-
//! dependent formatting — two identical runs produce byte-identical blobs.
//! (The workspace's vendored `serde` is an offline no-op stub, so the
//! derived trait impls here are markers only; the JSON codec is the real
//! wire format.)

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod histogram;
pub mod json;
pub mod probe;
pub mod series;

pub use histogram::Histogram;
pub use json::{Json, JsonError};
pub use probe::{JsonProbe, NullProbe, Prefixed, Probe};
pub use series::TimeSeries;
