//! A minimal deterministic JSON value model, writer, and parser.
//!
//! Telemetry blobs must be byte-identical across runs and platforms, so the
//! codec is intentionally narrow: objects, arrays, strings (no escapes
//! beyond `\"` and `\\`), unsigned 64-bit integers, booleans, and — for the
//! service wire API — 64-bit floats. Keys are written in the order the
//! caller supplies them; [`crate::JsonProbe`] supplies them sorted.
//!
//! Floats render in Rust's shortest-roundtrip decimal form (always with a
//! `.` or exponent so they re-parse as floats, never as integers), which
//! makes `parse(render(v)) == v` hold **bit-exactly** — the property the
//! versioned wire types (`TbResult`, `SweepRequest`) pin in tests. The
//! non-finite values have no JSON spelling, so the writer emits the
//! conventional extended tokens `NaN`, `Infinity`, and `-Infinity` (the
//! same extension Python's `json` module uses), and the parser accepts
//! them.

use std::fmt;

/// A JSON value in the subset the telemetry codec uses.
///
/// Equality is **bit-exact**: two [`Json::F64`] values compare equal iff
/// their IEEE-754 bit patterns do (so `NaN == NaN` here, and `0.0 != -0.0`)
/// — the right notion for a codec whose contract is byte-identical
/// round-trips, and the reason this type implements `PartialEq` manually
/// instead of deriving it.
#[derive(Debug, Clone)]
pub enum Json {
    /// An unsigned integer (the only number kind telemetry emits).
    U64(u64),
    /// A double-precision float (used by the service wire types; rendered
    /// in shortest-roundtrip form, always distinguishable from [`Json::U64`]
    /// by a `.`, exponent, or non-finite token).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep the order they were inserted in.
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::U64(a), Json::U64(b)) => a == b,
            (Json::F64(a), Json::F64(b)) => a.to_bits() == b.to_bits(),
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The float value: a [`Json::F64`] as-is, or a [`Json::U64`] converted
    /// (clients may legitimately write `3` where the schema says float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Decodes an array of integers under `key` of an object.
    pub fn u64_array(&self, key: &str) -> Option<Vec<u64>> {
        self.get(key)?.as_arr()?.iter().map(Json::as_u64).collect()
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::U64(n) => {
                use fmt::Write;
                write!(out, "{n}").expect("write to String");
            }
            Json::F64(x) => write_f64(out, *x),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `x` in shortest-roundtrip decimal form. A finite value always
/// carries a `.` (or an exponent the formatter chose), so the parser maps
/// it back to [`Json::F64`] rather than [`Json::U64`]; non-finite values
/// use the extended `NaN` / `Infinity` / `-Infinity` tokens.
fn write_f64(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("NaN");
        return;
    }
    if x.is_infinite() {
        out.push_str(if x > 0.0 { "Infinity" } else { "-Infinity" });
        return;
    }
    use fmt::Write;
    let start = out.len();
    write!(out, "{x}").expect("write to String");
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds an array of integers.
pub fn u64_array(vals: &[u64]) -> Json {
    Json::Arr(vals.iter().map(|&v| Json::U64(v)).collect())
}

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What the parser expected.
    pub expected: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: expected {}",
            self.at, self.expected
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a string in the telemetry JSON subset.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first byte that does not fit the
/// subset grammar (including trailing garbage after the value).
pub fn parse(s: &str) -> Result<Json, JsonError> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            expected: "end of input",
        });
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_word(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_word(b, pos, "false", Json::Bool(false)),
        Some(b'N') => parse_word(b, pos, "NaN", Json::F64(f64::NAN)),
        Some(b'I') => parse_word(b, pos, "Infinity", Json::F64(f64::INFINITY)),
        Some(b'-') if b.get(*pos + 1) == Some(&b'I') => {
            *pos += 1;
            parse_word(b, pos, "Infinity", Json::F64(f64::NEG_INFINITY))
        }
        Some(b'-') => parse_num(b, pos),
        Some(c) if c.is_ascii_digit() => parse_num(b, pos),
        _ => Err(JsonError {
            at: *pos,
            expected: "a value",
        }),
    }
}

/// Consumes the literal `word`, yielding `value`.
fn parse_word(
    b: &[u8],
    pos: &mut usize,
    word: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError {
            at: *pos,
            expected: "a value",
        })
    }
}

/// Parses a number: a plain run of digits is a [`Json::U64`]; anything
/// carrying a sign, decimal point, or exponent is a [`Json::F64`].
fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut seen_digit = false;
    let mut float = *pos > start; // a leading '-' forces the float path
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => seen_digit = true,
            b'.' | b'e' | b'E' | b'+' => float = true,
            b'-' if float => {} // exponent sign, e.g. 1e-3
            _ => break,
        }
        *pos += 1;
    }
    if !seen_digit {
        return Err(JsonError {
            at: start,
            expected: "a number",
        });
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| JsonError {
        at: start,
        expected: "an ASCII number",
    })?;
    if float {
        return text.parse::<f64>().map(Json::F64).map_err(|_| JsonError {
            at: start,
            expected: "a float",
        });
    }
    text.parse::<u64>().map(Json::U64).map_err(|_| JsonError {
        at: start,
        expected: "an integer fitting u64",
    })
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            expected: "an escaped quote or backslash",
                        })
                    }
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through byte by byte;
                // the input came from a &str, so they reassemble validly.
                let len = utf8_len(c);
                let end = *pos + len;
                let chunk = b.get(*pos..end).ok_or(JsonError {
                    at: *pos,
                    expected: "a complete UTF-8 sequence",
                })?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| JsonError {
                    at: *pos,
                    expected: "valid UTF-8",
                })?);
                *pos = end;
            }
            None => {
                return Err(JsonError {
                    at: *pos,
                    expected: "a closing quote",
                })
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    expected: "',' or ']'",
                })
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(JsonError {
                at: *pos,
                expected: "a key string",
            });
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(JsonError {
                at: *pos,
                expected: "':'",
            });
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        pairs.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    expected: "',' or '}'",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_value() {
        let v = Json::Obj(vec![
            ("a".into(), Json::U64(7)),
            ("b".into(), u64_array(&[1, 2, 3])),
            (
                "c".into(),
                Json::Obj(vec![("s".into(), Json::Str("x\"y\\z".into()))]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn rendering_is_compact_and_ordered() {
        let v = Json::Obj(vec![("b".into(), Json::U64(1)), ("a".into(), Json::U64(2))]);
        assert_eq!(v.render(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn parses_whitespace_tolerant() {
        let v = parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.u64_array("k"), Some(vec![1, 2]));
    }

    #[test]
    fn u64_max_roundtrips_exactly() {
        let s = Json::U64(u64::MAX).render();
        assert_eq!(parse(&s).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_overflow_and_garbage() {
        assert!(parse("18446744073709551616").is_err()); // u64::MAX + 1
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
        assert!(parse("truth").is_err());
        assert!(parse("1.2.3").is_err());
        assert!(parse("-").is_err());
        assert!(parse("Inf").is_err());
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 8.0, // subnormal
            f64::MAX,
            f64::MIN,
            1e-300,
            6.25,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let rendered = Json::F64(x).render();
            let back = parse(&rendered).unwrap_or_else(|e| panic!("{rendered}: {e}"));
            assert_eq!(back, Json::F64(x), "{rendered}");
            // Render → parse → render is a fixed point (byte-identical).
            assert_eq!(back.render(), rendered);
        }
    }

    #[test]
    fn finite_floats_never_collide_with_integers() {
        // A whole-valued float renders with a trailing `.0`, so the parser
        // can always reconstruct which variant wrote it.
        assert_eq!(Json::F64(7.0).render(), "7.0");
        assert_eq!(parse("7.0").unwrap(), Json::F64(7.0));
        assert_eq!(parse("7").unwrap(), Json::U64(7));
        assert_eq!(Json::F64(-0.0).render(), "-0.0");
        assert_ne!(parse("-0.0").unwrap(), Json::F64(0.0), "signed zero kept");
    }

    #[test]
    fn bools_and_negative_numbers_parse() {
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(parse("-1").unwrap(), Json::F64(-1.0));
        assert_eq!(parse("1e-3").unwrap(), Json::F64(1e-3));
        assert_eq!(parse("2.5e10").unwrap(), Json::F64(2.5e10));
        // Integer-typed schema slots tolerate float-typed zero from clients.
        assert_eq!(parse("3").unwrap().as_f64(), Some(3.0));
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":3,"arr":[1],"s":"hi"}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("missing"), None);
        assert!(v.get("arr").unwrap().as_arr().is_some());
        assert_eq!(v.get("s").unwrap().as_u64(), None);
    }
}
