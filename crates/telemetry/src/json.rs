//! A minimal deterministic JSON value model, writer, and parser.
//!
//! Telemetry blobs must be byte-identical across runs and platforms, so the
//! codec is intentionally narrow: objects, arrays, strings (no escapes
//! beyond `\"` and `\\`), and unsigned 64-bit integers. Keys are written in
//! the order the caller supplies them; [`crate::JsonProbe`] supplies them
//! sorted.

use std::fmt;

/// A JSON value in the subset the telemetry codec uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// An unsigned integer (the only number kind telemetry emits).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep the order they were inserted in.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Decodes an array of integers under `key` of an object.
    pub fn u64_array(&self, key: &str) -> Option<Vec<u64>> {
        self.get(key)?.as_arr()?.iter().map(Json::as_u64).collect()
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::U64(n) => {
                use fmt::Write;
                write!(out, "{n}").expect("write to String");
            }
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds an array of integers.
pub fn u64_array(vals: &[u64]) -> Json {
    Json::Arr(vals.iter().map(|&v| Json::U64(v)).collect())
}

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What the parser expected.
    pub expected: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: expected {}",
            self.at, self.expected
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a string in the telemetry JSON subset.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first byte that does not fit the
/// subset grammar (including trailing garbage after the value).
pub fn parse(s: &str) -> Result<Json, JsonError> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            expected: "end of input",
        });
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(c) if c.is_ascii_digit() => parse_num(b, pos),
        _ => Err(JsonError {
            at: *pos,
            expected: "a value",
        }),
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    let mut n: u64 = 0;
    while let Some(c) = b.get(*pos).filter(|c| c.is_ascii_digit()) {
        n = n
            .checked_mul(10)
            .and_then(|n| n.checked_add((c - b'0') as u64))
            .ok_or(JsonError {
                at: start,
                expected: "an integer fitting u64",
            })?;
        *pos += 1;
    }
    Ok(Json::U64(n))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            expected: "an escaped quote or backslash",
                        })
                    }
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through byte by byte;
                // the input came from a &str, so they reassemble validly.
                let len = utf8_len(c);
                let end = *pos + len;
                let chunk = b.get(*pos..end).ok_or(JsonError {
                    at: *pos,
                    expected: "a complete UTF-8 sequence",
                })?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| JsonError {
                    at: *pos,
                    expected: "valid UTF-8",
                })?);
                *pos = end;
            }
            None => {
                return Err(JsonError {
                    at: *pos,
                    expected: "a closing quote",
                })
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    expected: "',' or ']'",
                })
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(JsonError {
                at: *pos,
                expected: "a key string",
            });
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(JsonError {
                at: *pos,
                expected: "':'",
            });
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        pairs.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    expected: "',' or '}'",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_value() {
        let v = Json::Obj(vec![
            ("a".into(), Json::U64(7)),
            ("b".into(), u64_array(&[1, 2, 3])),
            (
                "c".into(),
                Json::Obj(vec![("s".into(), Json::Str("x\"y\\z".into()))]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn rendering_is_compact_and_ordered() {
        let v = Json::Obj(vec![("b".into(), Json::U64(1)), ("a".into(), Json::U64(2))]);
        assert_eq!(v.render(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn parses_whitespace_tolerant() {
        let v = parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.u64_array("k"), Some(vec![1, 2]));
    }

    #[test]
    fn u64_max_roundtrips_exactly() {
        let s = Json::U64(u64::MAX).render();
        assert_eq!(parse(&s).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_overflow_and_garbage() {
        assert!(parse("18446744073709551616").is_err()); // u64::MAX + 1
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("-1").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":3,"arr":[1],"s":"hi"}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("missing"), None);
        assert!(v.get("arr").unwrap().as_arr().is_some());
        assert_eq!(v.get("s").unwrap().as_u64(), None);
    }
}
