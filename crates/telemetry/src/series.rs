//! Windowed time series: event counts bucketed into fixed-width cycle
//! windows.

use crate::json::{self, Json, JsonError};
use serde::{Deserialize, Serialize};

/// A time series of event counts over fixed-width cycle windows.
///
/// `record(cycle, n)` adds `n` events to the bin `cycle / window`. Bins
/// grow on demand (amortized; recording into an already-covered cycle range
/// does not allocate), so the series length reflects the last recorded
/// cycle, not a preconfigured horizon.
///
/// # Examples
///
/// ```
/// use ruche_telemetry::TimeSeries;
///
/// let mut s = TimeSeries::new(100);
/// s.record(5, 1);
/// s.record(99, 2);
/// s.record(250, 1);
/// assert_eq!(s.bins(), &[3, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Cycles per bin.
    window: u64,
    bins: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with the given window width in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be at least one cycle");
        TimeSeries {
            window,
            bins: Vec::new(),
        }
    }

    /// Adds `amount` events at `cycle`.
    #[inline]
    pub fn record(&mut self, cycle: u64, amount: u64) {
        let bin = (cycle / self.window) as usize;
        if bin >= self.bins.len() {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += amount;
    }

    /// Cycles per bin.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Per-window event counts, oldest first.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Peak per-window rate in events per cycle.
    pub fn peak_rate(&self) -> f64 {
        self.bins.iter().copied().max().unwrap_or(0) as f64 / self.window as f64
    }

    /// Adds another series' bins into this one (bin-by-bin).
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.window, other.window,
            "cannot merge series with different windows"
        );
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
    }

    /// Serializes to deterministic JSON (sorted keys, exact integers).
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("bins".into(), json::u64_array(&self.bins)),
            ("window".into(), Json::U64(self.window)),
        ])
        .render()
    }

    /// Parses the [`TimeSeries::to_json`] format.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if `s` is not valid subset JSON or lacks the
    /// expected fields.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let v = json::parse(s)?;
        let shape = JsonError {
            at: 0,
            expected: "a time-series object",
        };
        let bins = v.u64_array("bins").ok_or(shape.clone())?;
        let window = v
            .get("window")
            .and_then(Json::as_u64)
            .filter(|&w| w > 0)
            .ok_or(shape)?;
        Ok(TimeSeries { window, bins })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_by_window() {
        let mut s = TimeSeries::new(10);
        s.record(0, 1);
        s.record(9, 1);
        s.record(10, 5);
        s.record(35, 2);
        assert_eq!(s.bins(), &[2, 5, 0, 2]);
        assert_eq!(s.total(), 9);
        assert_eq!(s.peak_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_window_panics() {
        TimeSeries::new(0);
    }

    /// A zero-amount record still extends the bin vector — the event
    /// wheel's bulk idle accounting relies on one `record(last, 0)`
    /// producing exactly the bins that per-cycle empty records would.
    #[test]
    fn zero_amount_record_extends_bins() {
        let mut bulk = TimeSeries::new(10);
        bulk.record(34, 0);
        let mut per_cycle = TimeSeries::new(10);
        for cycle in 0..35 {
            per_cycle.record(cycle, 0);
        }
        assert_eq!(bulk.bins(), per_cycle.bins());
        assert_eq!(bulk.bins(), &[0, 0, 0, 0]);
        assert_eq!(bulk.total(), 0);
    }

    #[test]
    fn merge_extends_and_accumulates() {
        let mut a = TimeSeries::new(4);
        let mut b = TimeSeries::new(4);
        a.record(0, 1);
        b.record(1, 2);
        b.record(11, 3);
        a.merge(&b);
        assert_eq!(a.bins(), &[3, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "different windows")]
    fn merge_rejects_mismatched_windows() {
        let mut a = TimeSeries::new(4);
        a.merge(&TimeSeries::new(5));
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let mut s = TimeSeries::new(64);
        s.record(1, 2);
        s.record(640, 9);
        let j = s.to_json();
        let back = TimeSeries::from_json(&j).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), j);
        // An empty series roundtrips too.
        let e = TimeSeries::new(8);
        assert_eq!(TimeSeries::from_json(&e.to_json()).unwrap(), e);
    }

    #[test]
    fn from_json_rejects_malformed_shapes() {
        assert!(TimeSeries::from_json(r#"{"bins":[1]}"#).is_err());
        assert!(TimeSeries::from_json(r#"{"bins":[1],"window":0}"#).is_err());
        assert!(TimeSeries::from_json("3").is_err());
    }
}
